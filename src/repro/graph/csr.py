"""CSR fast-path backend: integer-interned flat-array graph kernels.

The object substrate (:class:`~repro.graph.labeled_graph.LabeledGraph` and
:class:`~repro.graph.bipartite.BipartiteView`) keys adjacency by arbitrary
hashable vertices, which is flexible but pays a Python hash plus boxed
set/dict machinery on every neighbour visit.  The hot kernels of the BCC
pipeline — butterfly-degree counting (Algorithm 3), k-core peeling
(Algorithms 2/4) and the per-iteration BFS query-distance sweep
(Algorithms 1/5) — spend almost all of their time in exactly those visits,
so this module provides a compact CSR (compressed sparse row) mirror of both
graph classes and ports the three kernels to operate natively on integer ids
over flat arrays.  This is the same layout that makes the
Batagelj–Zaversnik peeling [3] and the vertex-priority butterfly counting of
Wang et al. [41] fast in practice.

The interning / freeze–thaw contract
------------------------------------

* A :class:`VertexInterner` maps vertices and labels to dense integer ids
  (``0 .. n-1``) and back.  Ids are assigned in **iteration order** of the
  frozen graph, so a CSR snapshot visits vertices in exactly the same order
  as the object graph it mirrors — sweep results that depend on iteration
  order (e.g. tie-breaking among farthest vertices) are therefore identical
  between the two backends.
* :meth:`CSRGraph.freeze` takes an immutable snapshot of a
  :class:`LabeledGraph` (:meth:`LabeledGraph.freeze` caches one per graph
  version, so repeated kernel calls on an unmutated graph pay the freeze
  once); :meth:`CSRGraph.thaw` converts back.  A frozen graph is **never
  mutated**: shrinking phases instead carry a ``dead`` id set which every
  kernel accepts.  This works because the BCC searches only ever *delete
  vertices* from a community — every intermediate graph is an induced
  subgraph of the frozen one (see :mod:`repro.core.online_bcc`).
* Mutating phases (Algorithm 4 cascades, graph construction, dataset
  generation) keep using the object substrate; the CSR backend is a read
  path only.

When each backend is used
-------------------------

The object-facing kernels (:func:`repro.core.butterfly.butterfly_degrees`,
:func:`repro.core.kcore.core_decomposition`, ...) accept
``backend="auto" | "object" | "csr"``.  ``auto`` runs the CSR kernel once
the graph is large enough for the freeze cost to be recovered and falls
back to the object code on small inputs; both paths return exactly the same
values (the randomized parity suite in ``tests/core/test_backend_parity.py``
enforces this).  The search drivers (:func:`repro.core.online_bcc.
online_bcc_search`, :class:`repro.core.query_distance.QueryDistanceTracker`)
freeze the candidate community once and sweep over the flat arrays with a
``dead`` mask.

The adjacency is built and iterated as flat plain lists — CPython re-boxes
every ``array`` element on access while list elements are shared references,
so lists are what the kernels run on.  Compact ``array('l')`` /
``array('i')`` views of the same offset/neighbour data are available through
the :attr:`~_FlatAdjacency.offsets` / :attr:`~_FlatAdjacency.neighbors`
properties (materialized lazily) for serialization or memory-tight export;
no third-party dependencies anywhere.
"""

from __future__ import annotations

from array import array
from collections import Counter, deque
from itertools import accumulate, chain
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import VertexNotFoundError
from repro.graph.bipartite import BipartiteView
from repro.graph.labeled_graph import Label, LabeledGraph, Vertex

#: Unreached/unknown distance sentinel used by the BFS kernels.
UNREACHED = -1


class VertexInterner:
    """Bidirectional vertex <-> dense integer id (and label <-> label id) map.

    Ids are dense and start at 0, in the order vertices are interned; the
    freeze helpers intern in graph iteration order so id order equals the
    object graph's iteration order.  When every vertex already *is* its own
    dense id (``vertex == index``, the common case for synthetic networks),
    the interner detects it and skips the translation dict entirely.
    """

    __slots__ = ("_id_of", "_vertex_of", "_identity", "_label_id_of", "_label_of")

    def __init__(self, order: Optional[Sequence[Vertex]] = None) -> None:
        self._vertex_of: List[Vertex] = list(order) if order is not None else []
        self._identity: bool = all(
            isinstance(v, int) and not isinstance(v, bool) and v == i
            for i, v in enumerate(self._vertex_of)
        )
        self._id_of: Optional[Dict[Vertex, int]] = (
            None
            if self._identity
            else dict(zip(self._vertex_of, range(len(self._vertex_of))))
        )
        self._label_id_of: Dict[Label, int] = {}
        self._label_of: List[Label] = []

    # -- vertices -------------------------------------------------------
    def intern_vertex(self, vertex: Vertex) -> int:
        """Return the id of ``vertex``, assigning the next dense id if new."""
        if self._identity:
            # Materialize the dict lazily the first time interning leaves the
            # identity regime.
            if (
                isinstance(vertex, int)
                and not isinstance(vertex, bool)
                and vertex == len(self._vertex_of)
            ):
                self._vertex_of.append(vertex)
                return vertex
            if isinstance(vertex, int) and 0 <= vertex < len(self._vertex_of):
                return vertex
            self._id_of = dict(zip(self._vertex_of, range(len(self._vertex_of))))
            self._identity = False
        vid = self._id_of.get(vertex)  # type: ignore[union-attr]
        if vid is None:
            vid = len(self._vertex_of)
            self._id_of[vertex] = vid  # type: ignore[index]
            self._vertex_of.append(vertex)
        return vid

    def id_of(self, vertex: Vertex) -> int:
        """Return the id of an interned ``vertex`` (raise if unknown)."""
        vid = self.try_id_of(vertex)
        if vid is None:
            raise VertexNotFoundError(vertex)
        return vid

    def try_id_of(self, vertex: Vertex) -> Optional[int]:
        """Return the id of ``vertex`` or ``None`` when it was never interned."""
        if self._identity:
            if (
                isinstance(vertex, int)
                and not isinstance(vertex, bool)
                and 0 <= vertex < len(self._vertex_of)
            ):
                return vertex
            return None
        return self._id_of.get(vertex)  # type: ignore[union-attr]

    def vertex_of(self, vid: int) -> Vertex:
        """Return the vertex object behind ``vid``."""
        return self._vertex_of[vid]

    def vertices(self) -> List[Vertex]:
        """Return the interned vertices in id order (do not mutate)."""
        return self._vertex_of

    def __len__(self) -> int:
        return len(self._vertex_of)

    def __contains__(self, vertex: Vertex) -> bool:
        return self.try_id_of(vertex) is not None

    # -- labels ---------------------------------------------------------
    def intern_label(self, label: Label) -> int:
        """Return the label id of ``label``, assigning a new one if needed."""
        lid = self._label_id_of.get(label)
        if lid is None:
            lid = len(self._label_of)
            self._label_id_of[label] = lid
            self._label_of.append(label)
        return lid

    def label_of(self, lid: int) -> Label:
        """Return the label object behind ``lid``."""
        return self._label_of[lid]

    def num_labels(self) -> int:
        """Return how many distinct labels have been interned."""
        return len(self._label_of)


class _FlatAdjacency:
    """Shared flat-array adjacency plumbing for the two CSR classes.

    The adjacency is built as plain flat lists (CPython constructs those at
    C speed and kernels iterate them without re-boxing every element); the
    canonical compact ``array('l')`` / ``array('i')`` storage is
    materialized lazily through the :attr:`offsets` / :attr:`neighbors`
    properties, so freezes that only feed kernels never pay for it.

    The constructor also accepts *ready-made* compact storage — an
    :class:`array.array` or an int-typed :class:`memoryview` (e.g. a cast
    slice of an ``mmap``) — in place of the plain lists.  That path copies
    nothing: the given buffers become the canonical :attr:`offsets` /
    :attr:`neighbors` storage directly, and the kernel-facing flat lists
    are materialized lazily on the first :meth:`adjacency_lists` call, so
    attaching a persisted snapshot costs O(1) until a kernel actually runs.
    """

    __slots__ = ("interner", "_offsets_arr", "_neighbors_arr", "_offs", "_nbrs", "_slices", "_deg")

    def __init__(
        self,
        interner: VertexInterner,
        offsets: Union[List[int], Sequence[int]],
        neighbors: Union[List[int], Sequence[int]],
    ) -> None:
        self.interner = interner
        if isinstance(offsets, list):
            self._offs: Optional[List[int]] = offsets
            self._offsets_arr: Optional[Sequence[int]] = None
        else:  # ready-made storage (array / memoryview): adopt, don't copy
            self._offs = None
            self._offsets_arr = offsets
        if isinstance(neighbors, list):
            self._nbrs: Optional[List[int]] = neighbors
            self._neighbors_arr: Optional[Sequence[int]] = None
        else:
            self._nbrs = None
            self._neighbors_arr = neighbors
        self._slices: Optional[List[List[int]]] = None
        self._deg: Optional[List[int]] = None

    @property
    def offsets(self) -> Sequence[int]:
        """Compact offset storage of length ``n + 1``; neighbours of id ``v``
        live in ``neighbors[offsets[v]:offsets[v + 1]]``.

        An ``array('l')`` on the freeze path (materialized lazily from the
        flat list); whatever buffer the caller injected — e.g. an
        ``mmap``-backed ``memoryview`` — on the attach path.
        """
        if self._offsets_arr is None:
            self._offsets_arr = array("l", self._offs)
        return self._offsets_arr

    @property
    def neighbors(self) -> Sequence[int]:
        """Compact neighbour-id storage, ``2 |E|`` entries (see :attr:`offsets`)."""
        if self._neighbors_arr is None:
            self._neighbors_arr = array("i", self._nbrs)
        return self._neighbors_arr

    # -- sizes ----------------------------------------------------------
    def num_vertices(self) -> int:
        """Return the number of frozen vertices."""
        offs = self._offs if self._offs is not None else self._offsets_arr
        return len(offs) - 1

    def num_edges(self) -> int:
        """Return the number of frozen undirected edges."""
        nbrs = self._nbrs if self._nbrs is not None else self._neighbors_arr
        return len(nbrs) // 2

    def degree(self, vid: int) -> int:
        """Return the frozen degree of id ``vid``."""
        offs = self._offs if self._offs is not None else self._offsets_arr
        return offs[vid + 1] - offs[vid]

    def degree_list(self) -> List[int]:
        """Return (and cache) the per-id degree list."""
        if self._deg is None:
            offs, _ = self.adjacency_lists()
            self._deg = [offs[i + 1] - offs[i] for i in range(len(offs) - 1)]
        return self._deg

    # -- id plumbing -----------------------------------------------------
    def id_of(self, vertex: Vertex) -> int:
        """Return the id of ``vertex`` (raise if not frozen)."""
        return self.interner.id_of(vertex)

    def try_id_of(self, vertex: Vertex) -> Optional[int]:
        """Return the id of ``vertex`` or ``None`` when not part of the snapshot."""
        return self.interner.try_id_of(vertex)

    def vertex_of(self, vid: int) -> Vertex:
        """Return the vertex object behind ``vid``."""
        return self.interner.vertex_of(vid)

    # -- kernel views ----------------------------------------------------
    def adjacency_lists(self) -> Tuple[List[int], List[int]]:
        """Return ``(offsets, neighbors)`` as plain lists for kernels.

        On the attach path (compact storage injected at construction) the
        lists are materialized here, once, the first time a kernel needs
        them — a C-speed ``list()`` over the storage buffer.
        """
        if self._offs is None:
            self._offs = list(self._offsets_arr)
        if self._nbrs is None:
            self._nbrs = list(self._neighbors_arr)
        return self._offs, self._nbrs

    def adjacency_slices(self) -> List[List[int]]:
        """Return (and cache) per-id neighbour lists sliced out of the flat array.

        Kernels that revisit neighbourhoods many times (BFS sweeps, wedge
        enumeration) iterate these shared slices instead of re-slicing the
        flat array on every visit.  Neighbour *order* within a slice is not
        part of the contract (the butterfly kernel rank-sorts in place).
        """
        if self._slices is None:
            offs, nbrs = self.adjacency_lists()
            self._slices = [
                nbrs[offs[i] : offs[i + 1]] for i in range(len(offs) - 1)
            ]
        return self._slices


class CSRGraph(_FlatAdjacency):
    """An immutable CSR snapshot of a :class:`LabeledGraph`.

    Construction is via :meth:`freeze`; the inverse bridge is :meth:`thaw`.
    ``labels`` holds one label id per vertex id.  The snapshot lazily caches
    derived read-only structures (degree list, adjacency slices, coreness)
    so repeated kernel calls amortize their construction.
    """

    __slots__ = ("labels", "_coreness")

    def __init__(
        self,
        interner: VertexInterner,
        offsets: Union[List[int], Sequence[int]],
        neighbors: Union[List[int], Sequence[int]],
        labels: Sequence[int],
    ) -> None:
        super().__init__(interner, offsets, neighbors)
        self.labels = labels
        self._coreness: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # freeze / thaw bridge
    # ------------------------------------------------------------------
    @classmethod
    def freeze(
        cls, graph: LabeledGraph, vertices: Optional[Iterable[Vertex]] = None
    ) -> "CSRGraph":
        """Snapshot ``graph`` (or the subgraph induced by ``vertices``).

        Ids follow the iteration order of ``graph`` (restricted to
        ``vertices`` when given), so CSR sweeps visit vertices in the same
        order as object-graph sweeps.  Prefer
        :meth:`LabeledGraph.freeze`, which caches the snapshot per graph
        version.
        """
        adj = graph._adj  # friend access: freezing is a graph-layer concern
        vertex_labels = graph._labels
        if vertices is None:
            order = list(adj)
            interner = VertexInterner(order)
            offsets = [0]
            offsets.extend(accumulate(map(len, adj.values())))
            flat = chain.from_iterable(adj.values())
            if interner._identity:
                neighbors = list(flat)
            else:
                neighbors = list(
                    map(interner._id_of.__getitem__, flat)  # type: ignore[union-attr]
                )
        else:
            keep = {v for v in vertices if v in adj}
            order = [v for v in adj if v in keep]
            interner = VertexInterner(order)
            id_map = {v: i for i, v in enumerate(order)}
            neighbors = []
            offsets = [0] * (len(order) + 1)
            for i, v in enumerate(order):
                neighbors.extend(id_map[w] for w in adj[v] if w in keep)
                offsets[i + 1] = len(neighbors)
        intern_label = interner.intern_label
        labels = array("i", [intern_label(vertex_labels[v]) for v in order])
        return cls(interner, offsets, neighbors, labels)

    @classmethod
    def attach(
        cls,
        order: Sequence[Vertex],
        label_order: Sequence[Label],
        offsets: Sequence[int],
        neighbors: Sequence[int],
        labels: Sequence[int],
        coreness: Optional[Sequence[int]] = None,
    ) -> "CSRGraph":
        """Adopt ready-made CSR storage — the attach-from-buffer path.

        The inverse of serializing a frozen snapshot: ``order`` and
        ``label_order`` rebuild the interner (identity detection keeps
        dense-int graphs dict-free), and the ``offsets`` / ``neighbors`` /
        ``labels`` buffers — typically ``memoryview`` casts over an
        ``mmap``-ed snapshot file or a ``multiprocessing.shared_memory``
        block — become the canonical storage *without copying* through the
        storage-injection constructor.  Kernel-facing flat lists
        materialize lazily on first use, exactly as on the
        :meth:`~repro.store.Snapshot.as_csr_graph` path.  A ``coreness``
        sequence (when the producer already peeled) is materialized
        eagerly so the first k-core query is an O(n) filter.
        """
        interner = VertexInterner(order)
        for label in label_order:
            interner.intern_label(label)
        csr = cls(interner, offsets, neighbors, labels)
        if coreness is not None:
            csr._coreness = list(coreness)
        return csr

    def thaw(self, dead: Optional[Set[int]] = None) -> LabeledGraph:
        """Rebuild a :class:`LabeledGraph`, dropping ids in ``dead``.

        This realizes "induced subgraph on the survivors" without touching
        the frozen arrays.
        """
        g = LabeledGraph()
        interner = self.interner
        offs, nbrs = self.adjacency_lists()
        labels = self.labels
        for v in range(len(labels)):
            if dead is not None and v in dead:
                continue
            g.add_vertex(interner.vertex_of(v), label=interner.label_of(labels[v]))
        for v in range(len(labels)):
            if dead is not None and v in dead:
                continue
            vertex = interner.vertex_of(v)
            for w in nbrs[offs[v] : offs[v + 1]]:
                if w > v and (dead is None or w not in dead):
                    g.add_edge(vertex, interner.vertex_of(w))
        return g

    # ------------------------------------------------------------------
    # cached decompositions
    # ------------------------------------------------------------------
    def coreness(self) -> List[int]:
        """Return (and cache) the coreness per id.

        k-core extraction then reduces to an O(n) filter because the maximal
        k-core is exactly ``{v : coreness(v) >= k}``; a k-sweep (Algorithm 2
        runs one extraction per query side, Fig. 8 sweeps k) pays the
        peeling once per snapshot.
        """
        if self._coreness is None:
            self._coreness = csr_core_decomposition(self)
        return self._coreness

    def label_of_id(self, vid: int) -> Label:
        """Return the label object of id ``vid``."""
        return self.interner.label_of(self.labels[vid])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(|V|={self.num_vertices()}, |E|={self.num_edges()})"


class CSRBipartiteView(_FlatAdjacency):
    """An immutable CSR snapshot of a :class:`BipartiteView`.

    Left vertices receive ids ``0 .. n_left - 1`` (in the view's left-set
    iteration order), right vertices the remaining ids, so ``vid < n_left``
    tests the side in O(1).
    """

    __slots__ = ("n_left", "_rank_sorted")

    def __init__(
        self, interner: VertexInterner, offsets: List[int], neighbors: List[int], n_left: int
    ) -> None:
        super().__init__(interner, offsets, neighbors)
        self.n_left = n_left
        self._rank_sorted: Optional[Tuple[List[int], List[List[int]]]] = None

    @classmethod
    def freeze(cls, view: BipartiteView) -> "CSRBipartiteView":
        """Snapshot a :class:`BipartiteView` into flat arrays."""
        adj = view._adj  # friend access, as in CSRGraph.freeze
        left = [v for v in adj if v in view._left]
        right = [v for v in adj if v not in view._left]
        order = left + right
        interner = VertexInterner(order)
        id_map = None if interner._identity else interner._id_of
        offsets = [0]
        offsets.extend(accumulate(len(adj[v]) for v in order))
        flat = chain.from_iterable(adj[v] for v in order)
        if id_map is None:
            neighbors = list(flat)
        else:
            neighbors = list(map(id_map.__getitem__, flat))
        return cls(interner, offsets, neighbors, len(left))

    def is_left(self, vid: int) -> bool:
        """Return ``True`` when ``vid`` lies on the left side."""
        return vid < self.n_left

    def rank_sorted(self) -> Tuple[List[int], List[List[int]]]:
        """Return (and cache) ``(rank, rank_slices)`` for the wedge kernel.

        ``rank`` is the (degree, id) priority rank per id.  As a side effect
        the shared adjacency slices are sorted by ascending rank and
        ``rank_slices[u]`` holds the parallel sorted rank values, so the
        higher-priority portion of any neighbourhood is a contiguous suffix
        locatable by bisection.  Neighbour order is not part of any kernel
        contract, so the in-place sort is safe.
        """
        if self._rank_sorted is None:
            deg = self.degree_list()
            n = len(deg)
            rank = [0] * n
            for r, v in enumerate(sorted(range(n), key=lambda x: (deg[x], x))):
                rank[v] = r
            getter = rank.__getitem__
            slices = self.adjacency_slices()
            for nbr_list in slices:
                nbr_list.sort(key=getter)
            rank_slices = [list(map(getter, nbr_list)) for nbr_list in slices]
            self._rank_sorted = (rank, rank_slices)
        return self._rank_sorted

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRBipartiteView(|L|={self.n_left}, "
            f"|R|={self.num_vertices() - self.n_left}, |E|={self.num_edges()})"
        )


# ----------------------------------------------------------------------
# Butterfly counting kernels (Algorithm 3 / Wang et al. [41])
# ----------------------------------------------------------------------
def csr_butterfly_degrees(bip: CSRBipartiteView) -> List[int]:
    """Return χ(v) per id via single-enumeration wedge counting.

    Mirrors the vertex-priority strategy of
    :func:`repro.core.butterfly.butterfly_degrees_priority`: every butterfly
    is enumerated exactly once — from the lower-priority endpoint of its
    same-side pair on the enumeration side — and credited to all four
    members.  Because adjacency is rank-sorted (see
    :meth:`CSRBipartiteView.rank_sorted`), the higher-priority wedge
    endpoints reachable through a middle ``u`` form a contiguous slice
    suffix, so the per-wedge counting runs at C speed through
    ``Counter.update`` and the middle credits collapse to
    ``sum(counts over the suffix) - len(suffix)``.  The enumeration side is
    the one whose middles generate less wedge work.  Output is exact —
    identical to the plain Algorithm 3 counts.
    """
    n = bip.num_vertices()
    chi = [0] * n
    if n == 0:
        return chi
    rank, rank_slices = bip.rank_sorted()
    slices = bip.adjacency_slices()
    deg = bip.degree_list()
    n_left = bip.n_left
    # Wedge work of enumerating from a side == sum of squared middle degrees.
    left_work = sum(deg[u] * deg[u] for u in range(n_left, n))
    right_work = sum(deg[u] * deg[u] for u in range(n_left))
    if left_work <= right_work:
        side = range(n_left)
    else:
        side = range(n_left, n)
    # Enumerate in ascending rank so each middle's accept cut only moves
    # forward: the bisection per wedge group amortizes into O(deg) pointer
    # advances over the whole run.
    order = sorted(side, key=rank.__getitem__)
    ptr = [0] * n
    for v in order:
        sv = slices[v]
        if not sv:
            continue
        rv = rank[v]
        suffixes: List[List[int]] = []
        keep = suffixes.append
        wedge_ends: List[int] = []
        extend = wedge_ends.extend
        for u in sv:
            ranks_u = rank_slices[u]
            p = ptr[u]
            end = len(ranks_u)
            while p < end and ranks_u[p] <= rv:
                p += 1
            ptr[u] = p
            suffix = slices[u][p:]
            keep(suffix)
            if suffix:
                extend(suffix)
        if not wedge_ends:
            continue
        counts = Counter(wedge_ends)
        acc = 0
        for w, c in counts.items():
            if c > 1:
                d = c * (c - 1) // 2
                chi[w] += d
                acc += d
        if acc == 0:
            continue  # every endpoint pair has a single wedge: no butterflies
        chi[v] += acc
        # Each middle u of an endpoint pair (v, w) with c wedges participates
        # in c - 1 of that pair's butterflies:
        # sum over the accepted suffix of (c_w - 1).
        lookup = counts.__getitem__
        for u, suffix in zip(sv, suffixes):
            if suffix:
                chi[u] += sum(map(lookup, suffix)) - len(suffix)
    return chi


def csr_butterfly_degrees_two_sided(bip: CSRBipartiteView) -> List[int]:
    """Return χ(v) per id by per-vertex wedge counting (plain Algorithm 3).

    Enumerates every vertex's own wedges over the flat arrays; kept as a
    second exact kernel for cross-validation of
    :func:`csr_butterfly_degrees` and for instrumented comparisons.
    """
    n = bip.num_vertices()
    chi = [0] * n
    if n == 0:
        return chi
    slices = bip.adjacency_slices()
    paths = [0] * n
    touched: List[int] = []
    append = touched.append
    for v in range(n):
        for u in slices[v]:
            for w in slices[u]:
                if w == v:
                    continue
                c = paths[w]
                if c == 0:
                    append(w)
                paths[w] = c + 1
        total = 0
        for w in touched:
            c = paths[w]
            total += c * (c - 1) // 2
            paths[w] = 0
        touched.clear()
        chi[v] = total
    return chi


# ----------------------------------------------------------------------
# k-core kernels (Batagelj–Zaversnik [3])
# ----------------------------------------------------------------------
def csr_core_decomposition(graph: CSRGraph) -> List[int]:
    """Return the coreness per id (bucket peeling over flat lists).

    Lazy-bucket formulation of [3]: vertices are bucketed by degree and
    peeled in increasing order; stale bucket entries are skipped on pop and
    removal is encoded as degree ``-1`` so the inner relaxation needs no
    separate membership test.
    """
    n = graph.num_vertices()
    if n == 0:
        return []
    slices = graph.adjacency_slices()
    cd = list(graph.degree_list())
    max_degree = max(cd)
    buckets: List[List[int]] = [[] for _ in range(max_degree + 1)]
    for v in range(n):
        buckets[cd[v]].append(v)
    core = [0] * n
    k = 0
    for d in range(max_degree + 1):
        queue = buckets[d]
        i = 0
        while i < len(queue):
            v = queue[i]
            i += 1
            cv = cd[v]
            if cv > d or cv < 0:
                continue  # re-bucketed at another degree, or already peeled
            if cv > k:
                k = cv
            core[v] = k
            cd[v] = -1
            enqueue = queue.append
            for u in slices[v]:
                cu = cd[u]
                if cu > cv:
                    cu -= 1
                    cd[u] = cu
                    if cu <= d:
                        enqueue(u)
                    else:
                        buckets[cu].append(u)
    return core


def csr_k_core_alive(graph: CSRGraph, k: int) -> bytearray:
    """Return a byte mask of the maximal k-core (1 = survives the peel).

    When the snapshot's coreness cache is warm this is an O(n) filter
    (``coreness >= k``); otherwise a direct flat-array peel runs, which is
    cheaper than a full decomposition for a single k.
    """
    n = graph.num_vertices()
    if k <= 0:
        return bytearray(b"\x01") * n
    if graph._coreness is not None:
        return bytearray(c >= k for c in graph._coreness)
    slices = graph.adjacency_slices()
    deg = list(graph.degree_list())
    threshold = k - 1
    queue = deque(v for v in range(n) if deg[v] < k)
    for v in queue:
        deg[v] = -1
    popleft = queue.popleft
    append = queue.append
    while queue:
        v = popleft()
        for u in slices[v]:
            du = deg[u]
            if du >= 0:
                du -= 1
                deg[u] = du
                if du == threshold:
                    deg[u] = -1
                    append(u)
    return bytearray(d >= 0 for d in deg)


# ----------------------------------------------------------------------
# BFS kernels (Algorithm 5 substrate)
# ----------------------------------------------------------------------
def csr_bfs_distances(
    graph: _FlatAdjacency,
    source: int,
    dead: Optional[Set[int]] = None,
    max_depth: Optional[int] = None,
) -> List[int]:
    """Return hop distances per id from ``source`` (:data:`UNREACHED` = -1).

    Level-synchronous frontier expansion: each level's candidate set is
    built with C-speed ``set.update`` / set difference instead of a
    per-edge Python membership test.  ``dead`` restricts the traversal to
    the surviving induced subgraph (dead ids keep distance -1); the caller
    must pass a live ``source``.
    """
    n = graph.num_vertices()
    dist = [UNREACHED] * n
    if n == 0:
        return dist
    slices = graph.adjacency_slices()
    dist[source] = 0
    visited = {source}
    frontier = [source]
    depth = 0
    while frontier:
        if max_depth is not None and depth >= max_depth:
            break
        depth += 1
        reached: Set[int] = set()
        update = reached.update
        for u in frontier:
            update(slices[u])
        reached -= visited
        if dead is not None:
            reached -= dead
        if not reached:
            break
        visited |= reached
        for w in reached:
            dist[w] = depth
        frontier = list(reached)
    return dist


def csr_multi_source_bfs(
    graph: _FlatAdjacency,
    seeds: Iterable[Tuple[int, int]],
    dead: Optional[Set[int]] = None,
    restrict_to: Optional[Set[int]] = None,
) -> List[int]:
    """Generalized BFS where each seed id starts at its own level.

    Mirrors :func:`repro.graph.traversal.multi_source_bfs` on int ids: seeds
    keep their given levels (the minimum wins on duplicates), and when
    ``restrict_to`` is given only those ids — plus the seeds themselves —
    may be assigned distances.  Returns a per-id distance list with
    :data:`UNREACHED` for ids never relaxed.
    """
    n = graph.num_vertices()
    dist = [UNREACHED] * n
    if n == 0:
        return dist
    slices = graph.adjacency_slices()
    buckets: Dict[int, List[int]] = {}
    seed_ids: Set[int] = set()
    for vid, d in seeds:
        if d < 0:
            raise ValueError(f"seed distance for id {vid} must be >= 0, got {d}")
        if dead is not None and vid in dead:
            continue
        seed_ids.add(vid)
        if dist[vid] < 0 or d < dist[vid]:
            dist[vid] = d
            buckets.setdefault(d, []).append(vid)
    if not buckets:
        return dist
    level = min(buckets)
    max_level = max(buckets)
    while level <= max_level or level in buckets:
        frontier = buckets.pop(level, [])
        next_level = level + 1
        for u in frontier:
            if dist[u] != level:
                continue
            for w in slices[u]:
                if dead is not None and w in dead:
                    continue
                if restrict_to is not None and w not in restrict_to and w not in seed_ids:
                    continue
                if dist[w] < 0 or next_level < dist[w]:
                    dist[w] = next_level
                    buckets.setdefault(next_level, []).append(w)
                    if next_level > max_level:
                        max_level = next_level
        level += 1
    return dist
