"""Graph substrate: labeled graphs, traversal, bipartite views, CSR backend, I/O, generators."""

from repro.graph.bipartite import BipartiteView, extract_bipartite, extract_label_bipartite
from repro.graph.csr import (
    CSRBipartiteView,
    CSRGraph,
    VertexInterner,
    csr_bfs_distances,
    csr_butterfly_degrees,
    csr_core_decomposition,
    csr_k_core_alive,
    csr_multi_source_bfs,
)
from repro.graph.labeled_graph import LabeledGraph, union_graphs
from repro.graph.statistics import NetworkStatistics, compute_statistics, statistics_table
from repro.graph.traversal import (
    INFINITE_DISTANCE,
    are_connected,
    bfs_distances,
    connected_component,
    connected_components,
    diameter,
    distance_between,
    farthest_vertices,
    graph_query_distance,
    is_connected,
    multi_source_bfs,
    query_distances,
    shortest_path,
    vertex_query_distance,
)

__all__ = [
    "BipartiteView",
    "CSRBipartiteView",
    "CSRGraph",
    "INFINITE_DISTANCE",
    "LabeledGraph",
    "NetworkStatistics",
    "VertexInterner",
    "are_connected",
    "bfs_distances",
    "compute_statistics",
    "csr_bfs_distances",
    "csr_butterfly_degrees",
    "csr_core_decomposition",
    "csr_k_core_alive",
    "csr_multi_source_bfs",
    "connected_component",
    "connected_components",
    "diameter",
    "distance_between",
    "extract_bipartite",
    "extract_label_bipartite",
    "farthest_vertices",
    "graph_query_distance",
    "is_connected",
    "multi_source_bfs",
    "query_distances",
    "shortest_path",
    "statistics_table",
    "union_graphs",
    "vertex_query_distance",
]
