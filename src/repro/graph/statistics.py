"""Network statistics in the shape of Table 3 of the paper.

Table 3 reports, for every evaluation network: the number of vertices, the
number of edges, the number of distinct labels, the maximum coreness
``k_max`` and the maximum butterfly degree ``d_max`` (the paper's column is
named ``d_max`` but, per Section 8, it is the largest per-vertex butterfly
count over the cross-label bipartite structure — for 2-label graphs this is
the bipartite graph between the two labels, for multi-label graphs we take
the maximum over all label pairs that share at least one cross edge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.bipartite import extract_label_bipartite
from repro.graph.labeled_graph import LabeledGraph


@dataclass
class NetworkStatistics:
    """Summary statistics of one labeled network (one row of Table 3)."""

    name: str
    num_vertices: int
    num_edges: int
    num_labels: int
    max_coreness: int
    max_butterfly_degree: int
    num_cross_edges: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Tuple[str, int, int, int, int, int]:
        """Return the row in the column order of Table 3."""
        return (
            self.name,
            self.num_vertices,
            self.num_edges,
            self.num_labels,
            self.max_coreness,
            self.max_butterfly_degree,
        )


def max_coreness(graph: LabeledGraph) -> int:
    """Return the maximum coreness over all vertices of ``graph``."""
    # Imported lazily to avoid a circular import (core depends on graph).
    from repro.core.kcore import core_decomposition

    coreness = core_decomposition(graph)
    return max(coreness.values()) if coreness else 0


def max_butterfly_degree(
    graph: LabeledGraph, label_pairs: Optional[List[Tuple[object, object]]] = None
) -> int:
    """Return the maximum per-vertex butterfly degree over cross-label bipartite graphs.

    Parameters
    ----------
    graph:
        The labeled graph.
    label_pairs:
        Optional explicit list of label pairs to examine.  By default every
        unordered pair of labels that is joined by at least one cross edge is
        considered; for graphs with many labels this is the set of pairs that
        actually matter.
    """
    from repro.core.butterfly import butterfly_degrees

    if label_pairs is None:
        pairs = set()
        for u, v in graph.cross_edges():
            lab_u, lab_v = graph.label(u), graph.label(v)
            pairs.add(tuple(sorted((str(lab_u), str(lab_v)))))
        labels_by_str = {str(lab): lab for lab in graph.labels()}
        label_pairs = [(labels_by_str[a], labels_by_str[b]) for a, b in pairs]
    best = 0
    for left_label, right_label in label_pairs:
        bipartite = extract_label_bipartite(graph, left_label, right_label)
        degrees = butterfly_degrees(bipartite)
        if degrees:
            best = max(best, max(degrees.values()))
    return best


def compute_statistics(graph: LabeledGraph, name: str = "network") -> NetworkStatistics:
    """Compute the Table 3 statistics for ``graph``."""
    num_cross = sum(1 for _ in graph.cross_edges())
    stats = NetworkStatistics(
        name=name,
        num_vertices=graph.num_vertices(),
        num_edges=graph.num_edges(),
        num_labels=len(graph.labels()),
        max_coreness=max_coreness(graph),
        max_butterfly_degree=max_butterfly_degree(graph),
        num_cross_edges=num_cross,
    )
    if graph.num_vertices() > 0:
        stats.extra["avg_degree"] = 2.0 * graph.num_edges() / graph.num_vertices()
        stats.extra["cross_edge_fraction"] = (
            num_cross / graph.num_edges() if graph.num_edges() else 0.0
        )
    return stats


def statistics_table(rows: List[NetworkStatistics]) -> str:
    """Format a list of statistics as a Table 3-style text table."""
    header = ("Network", "|V|", "|E|", "Labels", "k_max", "d_max")
    lines = [" | ".join(f"{h:>12}" for h in header)]
    lines.append("-" * len(lines[0]))
    for row in rows:
        name, nv, ne, nl, kmax, dmax = row.as_row()
        lines.append(
            " | ".join(
                f"{value:>12}" for value in (name, nv, ne, nl, kmax, dmax)
            )
        )
    return "\n".join(lines)
