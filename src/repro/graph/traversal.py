"""Breadth-first traversal utilities: distances, components, diameters.

All BCC algorithms in the paper reason about unweighted shortest-path
distances (query distance, Def. 5; diameter, Section 3.1), so the traversal
layer only needs breadth-first search.  Distances are expressed as ``int``
hop counts; unreachable vertices are reported with
:data:`INFINITE_DISTANCE` (``math.inf``) or simply omitted from result
dictionaries depending on the function, as documented below.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import VertexNotFoundError
from repro.graph.labeled_graph import LabeledGraph, Vertex

INFINITE_DISTANCE = math.inf


def bfs_distances(
    graph: LabeledGraph,
    source: Vertex,
    max_depth: Optional[int] = None,
    backend: str = "auto",
) -> Dict[Vertex, int]:
    """Return hop distances from ``source`` to every reachable vertex.

    Parameters
    ----------
    graph:
        The graph to traverse.
    source:
        Starting vertex; must exist in ``graph``.
    max_depth:
        If given, the traversal stops after this many hops; vertices farther
        away are omitted from the result.
    backend:
        ``"object"`` walks the adjacency sets; ``"csr"`` runs the flat-array
        kernel on the graph's CSR snapshot; ``"auto"`` uses CSR only when a
        current snapshot is already cached (a one-shot BFS does not recover
        the freeze cost).  All backends return identical distances.

    Returns
    -------
    dict
        Mapping of reachable vertex to distance, including ``source`` at 0.
    """
    if source not in graph:
        raise VertexNotFoundError(source)
    if backend not in ("auto", "object", "csr", "process"):
        raise ValueError(f"unknown backend {backend!r}")
    # "process" is the batch-transport backend; its in-process kernel is CSR.
    if backend in ("csr", "process") or (backend == "auto" and graph.has_frozen()):
        from repro.graph.csr import csr_bfs_distances  # deferred: csr imports us

        frozen = graph.freeze()
        dist = csr_bfs_distances(frozen, frozen.id_of(source), max_depth=max_depth)
        vertex_of = frozen.vertex_of
        return {vertex_of(i): d for i, d in enumerate(dist) if d >= 0}
    distances: Dict[Vertex, int] = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = distances[u]
        if max_depth is not None and du >= max_depth:
            continue
        for w in graph.neighbors(u):
            if w not in distances:
                distances[w] = du + 1
                queue.append(w)
    return distances


def multi_source_bfs(
    graph: LabeledGraph,
    seeds: Dict[Vertex, int],
    restrict_to: Optional[Set[Vertex]] = None,
    backend: str = "auto",
) -> Dict[Vertex, int]:
    """Multi-source BFS where each seed starts at its own non-negative level.

    This generalized BFS is the primitive behind Algorithm 5 (fast query
    distance computation): the already-settled vertices are seeded with their
    known distances and only the unsettled region is re-explored.

    Parameters
    ----------
    graph:
        The graph to traverse.
    seeds:
        Mapping of seed vertex to its fixed starting distance.  Seeds absent
        from the graph are ignored.
    restrict_to:
        If provided, only vertices in this set (plus the seeds) may be
        assigned distances.
    backend:
        As in :func:`bfs_distances`: ``"auto"`` uses the CSR kernel only
        when the graph already holds a current snapshot.

    Returns
    -------
    dict
        Mapping of vertex to distance for all vertices reached, seeds
        included.
    """
    if backend not in ("auto", "object", "csr", "process"):
        raise ValueError(f"unknown backend {backend!r}")
    # "process" is the batch-transport backend; its in-process kernel is CSR.
    if backend in ("csr", "process") or (backend == "auto" and graph.has_frozen()):
        from repro.graph.csr import csr_multi_source_bfs  # deferred import

        frozen = graph.freeze()
        id_seeds = []
        for vertex, dist in seeds.items():
            vid = frozen.try_id_of(vertex)
            if vid is None:
                continue
            if dist < 0:
                raise ValueError(
                    f"seed distance for {vertex!r} must be >= 0, got {dist}"
                )
            id_seeds.append((vid, dist))
        restrict_ids = None
        if restrict_to is not None:
            restrict_ids = {
                vid
                for v in restrict_to
                if (vid := frozen.try_id_of(v)) is not None
            }
        dist_list = csr_multi_source_bfs(frozen, id_seeds, restrict_to=restrict_ids)
        vertex_of = frozen.vertex_of
        return {vertex_of(i): d for i, d in enumerate(dist_list) if d >= 0}
    buckets: Dict[int, List[Vertex]] = {}
    distances: Dict[Vertex, int] = {}
    for vertex, dist in seeds.items():
        if vertex not in graph:
            continue
        if dist < 0:
            raise ValueError(f"seed distance for {vertex!r} must be >= 0, got {dist}")
        if vertex not in distances or dist < distances[vertex]:
            distances[vertex] = dist
            buckets.setdefault(dist, []).append(vertex)
    if not distances:
        return {}
    level = min(buckets)
    max_level = max(buckets)
    while level <= max_level or level in buckets:
        frontier = buckets.pop(level, [])
        for u in frontier:
            if distances.get(u) != level:
                continue
            for w in graph.neighbors(u):
                if restrict_to is not None and w not in restrict_to and w not in seeds:
                    continue
                nd = level + 1
                if w not in distances or nd < distances[w]:
                    distances[w] = nd
                    buckets.setdefault(nd, []).append(w)
                    if nd > max_level:
                        max_level = nd
        level += 1
    return distances


def shortest_path(
    graph: LabeledGraph, source: Vertex, target: Vertex
) -> Optional[List[Vertex]]:
    """Return one shortest (fewest hops) path from ``source`` to ``target``.

    Returns ``None`` when the two vertices are disconnected.
    """
    if source not in graph:
        raise VertexNotFoundError(source)
    if target not in graph:
        raise VertexNotFoundError(target)
    if source == target:
        return [source]
    parents: Dict[Vertex, Vertex] = {source: source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w in parents:
                continue
            parents[w] = u
            if w == target:
                path = [w]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(w)
    return None


def distance_between(graph: LabeledGraph, source: Vertex, target: Vertex) -> float:
    """Return the hop distance between two vertices (``inf`` if disconnected)."""
    path = shortest_path(graph, source, target)
    if path is None:
        return INFINITE_DISTANCE
    return len(path) - 1


def connected_component(graph: LabeledGraph, source: Vertex) -> Set[Vertex]:
    """Return the vertex set of the connected component containing ``source``."""
    return set(bfs_distances(graph, source))


def connected_components(graph: LabeledGraph) -> List[Set[Vertex]]:
    """Return all connected components as a list of vertex sets."""
    remaining: Set[Vertex] = set(graph.vertices())
    components: List[Set[Vertex]] = []
    while remaining:
        seed = next(iter(remaining))
        component = connected_component(graph, seed)
        components.append(component)
        remaining -= component
    return components


def is_connected(graph: LabeledGraph) -> bool:
    """Return ``True`` if the graph is non-empty and connected."""
    vertices = list(graph.vertices())
    if not vertices:
        return False
    return len(connected_component(graph, vertices[0])) == len(vertices)


def are_connected(graph: LabeledGraph, vertices: Iterable[Vertex]) -> bool:
    """Return ``True`` if all given vertices are present and mutually connected.

    This implements the ``connect_G(Q)`` predicate used by Algorithm 1: the
    query vertices must all belong to the same connected component of the
    current graph.
    """
    targets = list(vertices)
    if not targets:
        return True
    for v in targets:
        if v not in graph:
            return False
    component = connected_component(graph, targets[0])
    return all(v in component for v in targets)


def query_distances(
    graph: LabeledGraph, query_vertices: Sequence[Vertex]
) -> Dict[Vertex, Dict[Vertex, int]]:
    """Return per-query BFS distance maps, ``{q: {v: dist(v, q)}}``."""
    return {q: bfs_distances(graph, q) for q in query_vertices}


def vertex_query_distance(
    distance_maps: Dict[Vertex, Dict[Vertex, int]], vertex: Vertex
) -> float:
    """Return ``dist_G(v, Q) = max_q dist(v, q)`` given per-query distance maps.

    Vertices unreachable from some query vertex get ``inf``.
    """
    worst = 0.0
    for dmap in distance_maps.values():
        if vertex not in dmap:
            return INFINITE_DISTANCE
        worst = max(worst, dmap[vertex])
    return worst


def graph_query_distance(
    graph: LabeledGraph,
    query_vertices: Sequence[Vertex],
    distance_maps: Optional[Dict[Vertex, Dict[Vertex, int]]] = None,
) -> float:
    """Return ``dist_G(G, Q) = max_v max_q dist(v, q)`` (Def. 5).

    Unreachable pairs yield ``inf``.
    """
    if distance_maps is None:
        distance_maps = query_distances(graph, query_vertices)
    worst = 0.0
    for v in graph.vertices():
        value = vertex_query_distance(distance_maps, v)
        if value == INFINITE_DISTANCE:
            return INFINITE_DISTANCE
        worst = max(worst, value)
    return worst


def eccentricity(graph: LabeledGraph, vertex: Vertex) -> float:
    """Return the eccentricity of ``vertex`` within its connected component.

    If the graph is disconnected the eccentricity is still computed with
    respect to the reachable vertices only; use :func:`diameter` for the
    strict definition over the whole graph.
    """
    distances = bfs_distances(graph, vertex)
    return max(distances.values()) if distances else 0


def diameter(graph: LabeledGraph) -> float:
    """Return the diameter ``max_{u,v} dist(u, v)`` of the graph.

    Returns ``inf`` for a disconnected graph and ``0`` for graphs with at most
    one vertex.  This is an exact all-pairs computation (a BFS per vertex) and
    is meant for the small result communities the algorithms return, not for
    full input graphs.
    """
    vertices = list(graph.vertices())
    if len(vertices) <= 1:
        return 0
    worst = 0
    n = len(vertices)
    for v in vertices:
        distances = bfs_distances(graph, v)
        if len(distances) < n:
            return INFINITE_DISTANCE
        worst = max(worst, max(distances.values()))
    return worst


def farthest_vertices(
    graph: LabeledGraph,
    query_vertices: Sequence[Vertex],
    distance_maps: Optional[Dict[Vertex, Dict[Vertex, int]]] = None,
) -> Tuple[List[Vertex], float]:
    """Return the vertices with the maximum query distance and that distance.

    Vertices unreachable from a query vertex are treated as infinitely far and
    therefore returned first.  Query vertices themselves are never returned
    (deleting a query vertex can never improve the answer).
    """
    if distance_maps is None:
        distance_maps = query_distances(graph, query_vertices)
    query_set = set(query_vertices)
    best_distance = -1.0
    best: List[Vertex] = []
    for v in graph.vertices():
        if v in query_set:
            continue
        value = vertex_query_distance(distance_maps, v)
        if value > best_distance:
            best_distance = value
            best = [v]
        elif value == best_distance:
            best.append(v)
    return best, best_distance
