"""The worker-process pool behind ``backend="process"``.

:class:`ProcessWorkerPool` owns N worker processes, each serving the same
shared graph (see :mod:`repro.parallel.shm`), and scatter-gathers batches
across them with **one task in flight per worker**:

* a worker gets its next task the moment its previous reply arrives, so
  load balances dynamically (no up-front chunking to mis-size);
* a task's deadline budget starts at its actual send time;
* a crashed worker loses exactly the one task it was running — which the
  pool converts into a position-aligned ``reason="worker-crashed"`` error
  row (or :class:`~repro.exceptions.WorkerCrashedError` under
  ``on_error="raise"``) and then **respawns the worker**, so the batch
  always completes and the pool always returns to full strength.  Never
  a hang: worker death is observed as pipe EOF by
  :func:`multiprocessing.connection.wait`, and a *wedged* (alive but
  silent) worker is bounded by the pool-side deadline watchdog —
  ``deadline_ms`` plus a grace period — which kills and respawns it.

Workers start through the ``spawn`` method by default: a forked child
would inherit its siblings' pipe ends (defeating EOF-based death
detection) and any lock a serving thread held at fork time.  ``spawn``
children start clean; the shared-memory segments are attached by name,
so zero-copy still holds.

Clock hygiene (BCC002): wall-clock access is injectable — ``clock=`` is
a constructor parameter defaulting to ``time.monotonic`` — so watchdog
tests can drive virtual time.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.config import SearchConfig
from repro.api.engine import error_response_for
from repro.api.query import Query, SearchResponse
from repro.exceptions import (
    DeadlineExceededError,
    QueryError,
    ReproError,
    UnknownMethodError,
    VertexNotFoundError,
    WorkerCrashedError,
)
from repro.parallel.shm import (
    GraphHandle,
    ProcessBackendUnavailable,
    SharedGraphExport,
    export_graph,
)
from repro.obs.tracing import current_span
from repro.parallel.worker import worker_main
from repro.server.protocol import (
    decode_response,
    encode_config,
    encode_query,
    encode_trace_context,
    json_dumps,
    json_loads,
)

#: Default worker count for ``backend="process"`` batches.
DEFAULT_PROCESS_WORKERS = 4

#: Extra wall-clock (seconds) the pool-side watchdog grants a task beyond
#: its ``deadline_ms`` before declaring the worker wedged.  The *accurate*
#: deadline is enforced worker-side by ``run_with_deadline``; the watchdog
#: only fires when the worker cannot even report the expiry (killed,
#: stopped, or stuck in a kernel), so a little slack avoids double kills.
DEFAULT_DEADLINE_GRACE_SECONDS = 0.5

#: Seconds a closing pool waits for a worker to exit before terminating it.
_SHUTDOWN_JOIN_SECONDS = 5.0

#: Seconds a spawning pool waits for a worker's ready handshake (attach +
#: thaw of the shared graph) before declaring the start failed.
_READY_TIMEOUT_SECONDS = 120.0

#: Pool-level counter names, in reporting order.
POOL_COUNTER_NAMES = (
    "batches",
    "tasks",
    "completed",
    "error_rows",
    "crashes",
    "respawns",
    "deadline_kills",
    "stale_results",
)


class WorkerTaskError(ReproError):
    """A worker reported an internal (non-caller) error for one task.

    The original exception type only exists in the worker; this carries
    its name and message across the process boundary.  Like every
    non-caller error it always raises — ``on_error="return"`` does not
    convert implementation bugs into error rows.
    """

    def __init__(self, message: str, exc_type: str = "Exception") -> None:
        super().__init__(f"worker raised {exc_type}: {message}")
        self.exc_type = exc_type


def _rebuild_error(descriptor: Dict[str, object]) -> Exception:
    """The parent-side exception for a worker error descriptor."""
    kind = descriptor.get("kind")
    message = str(descriptor.get("message", ""))
    if kind == "deadline":
        return DeadlineExceededError(deadline_ms=descriptor.get("deadline_ms"))
    if kind == "vertex":
        return VertexNotFoundError(descriptor.get("vertex"))
    if kind == "unknown-method":
        return UnknownMethodError(
            descriptor.get("method", "?"), known=descriptor.get("known") or ()
        )
    if kind == "query":
        return QueryError(message)
    return WorkerTaskError(message, str(descriptor.get("type", "Exception")))


@dataclass
class _TaskSpec:
    """One batch row: the query, its fully resolved config, optional pin."""

    index: int
    query: Query
    config: Optional[SearchConfig]
    pin: Optional[int] = None


@dataclass
class _Worker:
    """Parent-side state of one worker process."""

    index: int
    process: object
    conn: object
    counters: Dict[str, int] = field(
        default_factory=lambda: {
            "dispatched": 0,
            "completed": 0,
            "errors": 0,
            "crashes": 0,
            "respawns": 0,
        }
    )
    #: Last engine-counter snapshot the worker piggybacked on a reply
    #: (stats never block on a busy worker).
    engine_counters: Dict[str, int] = field(default_factory=dict)


@dataclass
class _Inflight:
    spec: _TaskSpec
    task_id: int
    deadline_at: Optional[float]
    #: The parent-side "row" span open while this task is in flight
    #: (``None`` when no trace is active); the worker's reported spans are
    #: grafted under it when the reply lands.
    span: Optional[object] = None


class ProcessWorkerPool:
    """N worker processes serving one shared graph.

    Parameters
    ----------
    graph:
        The graph to export (frozen on export if needed) — or ``None``
        when ``export`` is given.
    config:
        Worker engines' base :class:`SearchConfig`; per-task configs are
        resolved by the caller and shipped with each task.
    workers:
        Pool size.  Workers start lazily on the first batch (or eagerly
        via :meth:`start`).
    sharded:
        Build worker-side :class:`ShardedBCCEngine` s, for shard-pinned
        dispatch (see :meth:`run_batch`'s per-task ``pin``).
    snapshot_path:
        An existing ``.bccsnap`` file: workers ``mmap`` it directly and
        no shared-memory blocks are created.
    export:
        A ready :class:`SharedGraphExport` to serve from (shared across
        pools by :class:`~repro.server.replicas.ReplicaSet`); the pool
        then does *not* own its lifetime.
    fault_plan:
        Optional chaos hook: ``on("pool.dispatch", worker=, pid=,
        method=)`` runs right before each task is sent.
    clock / deadline_grace_seconds:
        Watchdog seam (see module docstring).
    start_method:
        ``multiprocessing`` start method (default ``"spawn"``; see module
        docstring for why ``fork`` is not the default).
    """

    def __init__(
        self,
        graph=None,
        config: Optional[SearchConfig] = None,
        workers: int = DEFAULT_PROCESS_WORKERS,
        *,
        sharded: bool = False,
        snapshot_path: Optional[str] = None,
        export: Optional[SharedGraphExport] = None,
        result_cache_size: int = 0,
        fault_plan: Optional[object] = None,
        clock=time.monotonic,
        deadline_grace_seconds: float = DEFAULT_DEADLINE_GRACE_SECONDS,
        start_method: str = "spawn",
    ) -> None:
        if workers < 1:
            raise ValueError("a process pool needs at least one worker")
        self.config = config if config is not None else SearchConfig()
        self.fault_plan = fault_plan
        self._clock = clock
        self._grace = deadline_grace_seconds
        self._ctx = multiprocessing.get_context(start_method)
        self._workers_count = workers
        if export is not None:
            self._export = export
            self._owns_export = False
        else:
            if graph is None:
                raise ValueError("ProcessWorkerPool needs a graph or an export")
            self._export = export_graph(
                graph,
                encode_config(self.config),
                sharded=sharded,
                snapshot_path=snapshot_path,
                result_cache_size=result_cache_size,
            )
            self._owns_export = True
        self._handle_text = json_dumps(self._export.handle.to_payload())
        # One batch at a time per pool: dispatch state (queues, in-flight
        # map) is method-local under this lock, so concurrent search_many
        # calls serialize here instead of interleaving replies.
        self._dispatch_lock = threading.Lock()
        self._workers_lock = threading.Lock()
        self._workers: List[_Worker] = []
        self._started = False
        self._closed = False
        self._task_seq = 0
        self._counters_lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in POOL_COUNTER_NAMES}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def handle(self) -> GraphHandle:
        return self._export.handle

    @property
    def workers(self) -> int:
        return self._workers_count

    def _spawn(self, index: int) -> _Worker:
        """Start worker ``index`` and wait for its ready handshake."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(index, child_conn, self._handle_text),
            name=f"bcc-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the child's end lives in the child now
        try:
            if not parent_conn.poll(_READY_TIMEOUT_SECONDS):
                process.terminate()
                process.join(timeout=_SHUTDOWN_JOIN_SECONDS)
                raise ProcessBackendUnavailable(
                    f"worker {index} did not report ready within "
                    f"{_READY_TIMEOUT_SECONDS:g}s"
                )
            ready = json_loads(parent_conn.recv())
        except (EOFError, OSError) as exc:
            process.join(timeout=_SHUTDOWN_JOIN_SECONDS)
            raise ProcessBackendUnavailable(
                f"worker {index} died before reporting ready"
            ) from exc
        if not ready.get("ready"):
            process.join(timeout=_SHUTDOWN_JOIN_SECONDS)
            raise ProcessBackendUnavailable(
                f"worker {index} failed to attach: {ready.get('error')}"
            )
        return _Worker(index=index, process=process, conn=parent_conn)

    def start(self) -> "ProcessWorkerPool":
        """Start every worker (idempotent); returns ``self``."""
        if self._closed:
            raise RuntimeError("pool is closed")
        with self._workers_lock:
            if self._started:
                return self
            spawned = [self._spawn(index) for index in range(self._workers_count)]
            self._workers = spawned
            self._started = True
        return self

    def is_started(self) -> bool:
        with self._workers_lock:
            return self._started and not self._closed

    def worker_pids(self) -> List[int]:
        """Live worker pids, in worker order (chaos tests kill by pid)."""
        with self._workers_lock:
            return [worker.process.pid for worker in self._workers]

    def close(self) -> None:
        """Shut workers down, release pipes, unlink an owned export."""
        if self._closed:
            return
        self._closed = True
        with self._workers_lock:
            workers = list(self._workers)
            self._workers = []
            self._started = False
        for worker in workers:
            try:
                worker.conn.send(json_dumps({"op": "shutdown"}))
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.process.join(timeout=_SHUTDOWN_JOIN_SECONDS)
            if worker.process.is_alive():  # pragma: no cover - wedged worker
                worker.process.terminate()
                worker.process.join(timeout=_SHUTDOWN_JOIN_SECONDS)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        if self._owns_export:
            self._export.close()

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # counters / stats
    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        with self._counters_lock:
            self._counters[name] += amount

    def _count_worker(self, worker: _Worker, name: str) -> None:
        # Worker counter dicts are reached through the worker object, but
        # share the counters lock so stats() never reads a torn value.
        with self._counters_lock:
            worker.counters[name] += 1

    def counters_snapshot(self) -> Dict[str, int]:
        with self._counters_lock:
            return dict(self._counters)

    def stats(self) -> Dict[str, object]:
        """The ``/stats`` block: pool counters + one block per worker."""
        with self._workers_lock:
            workers = list(self._workers)
        blocks = []
        with self._counters_lock:
            counters = dict(self._counters)
            for worker in workers:
                blocks.append(
                    {
                        "worker": worker.index,
                        "pid": worker.process.pid,
                        "alive": worker.process.is_alive(),
                        **dict(worker.counters),
                        "engine": dict(worker.engine_counters),
                    }
                )
        return {"size": self._workers_count, "counters": counters, "workers": blocks}

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _next_task_id(self) -> int:
        self._task_seq += 1  # only under _dispatch_lock
        return self._task_seq

    def _replace_worker(self, stale: _Worker) -> _Worker:
        """Respawn a dead/killed worker in its slot (counts the respawn)."""
        try:
            stale.conn.close()
        except OSError:  # pragma: no cover
            pass
        if stale.process.is_alive():  # watchdog kill: wedged but alive
            stale.process.terminate()
        stale.process.join(timeout=_SHUTDOWN_JOIN_SECONDS)
        fresh = self._spawn(stale.index)
        fresh.counters = dict(stale.counters)
        fresh.engine_counters = {}
        with self._workers_lock:
            for slot, current in enumerate(self._workers):
                if current is stale:
                    self._workers[slot] = fresh
                    break
        self._count("respawns")
        self._count_worker(fresh, "respawns")
        return fresh

    def _send_task(
        self,
        worker: _Worker,
        spec: _TaskSpec,
        task_id: int,
        use_cache: bool,
        trace_id: Optional[str] = None,
    ) -> bool:
        """Send one task; ``False`` when the worker's pipe is broken."""
        if self.fault_plan is not None:
            self.fault_plan.on(
                "pool.dispatch",
                worker=worker.index,
                pid=worker.process.pid,
                method=spec.query.method,
            )
        message = {
            "op": "search",
            "task": task_id,
            "query": encode_query(spec.query),
            "config": encode_config(spec.config),
            "use_cache": use_cache,
        }
        if trace_id is not None:
            # Trace context crosses the process boundary as one extra wire
            # field; without an active trace the message stays byte-
            # identical to the untraced protocol.
            message["trace"] = encode_trace_context(trace_id)
        try:
            worker.conn.send(json_dumps(message))
        except (BrokenPipeError, OSError):
            return False
        self._count_worker(worker, "dispatched")
        return True

    def run_batch(
        self,
        specs: Sequence[Tuple[Query, Optional[SearchConfig], Optional[int]]],
        *,
        on_error: str = "return",
        use_cache: bool = True,
    ) -> List[SearchResponse]:
        """Scatter-gather one batch; position-aligned results.

        ``specs`` rows are ``(query, resolved_config, pin)`` — the caller
        (the engine layer) has already applied config precedence;
        ``pin`` routes a task to one worker index (shard pinning) or
        ``None`` for any free worker.

        Error policy mirrors :func:`repro.api.engine.serve_batch`: caller
        errors, expired deadlines and worker crashes become error rows
        under ``on_error="return"``; internal worker errors always raise;
        under ``"raise"`` the earliest-position failure is raised after
        the rest of the batch drains (workers are never abandoned with
        tasks in flight).
        """
        tasks = [
            _TaskSpec(index=i, query=query, config=config, pin=pin)
            for i, (query, config, pin) in enumerate(specs)
        ]
        if not tasks:
            return []
        with self._dispatch_lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            self.start()
            return self._run_batch_locked(tasks, on_error, use_cache)

    def _run_batch_locked(
        self, tasks: List[_TaskSpec], on_error: str, use_cache: bool
    ) -> List[SearchResponse]:
        self._count("batches")
        self._count("tasks", len(tasks))
        # With an active trace, mirror the threaded path's span shape:
        # one "batch" span with one "row" span per task (opened at send,
        # finished at reply), worker-side span trees grafted under rows.
        caller_span = current_span()
        batch_span = (
            caller_span.child("batch", rows=len(tasks), transport="process")
            if caller_span is not None
            else None
        )
        trace_id = (
            batch_span.trace.request_id if batch_span is not None else None
        )
        try:
            return self._scatter_gather_locked(
                tasks, on_error, use_cache, batch_span, trace_id
            )
        finally:
            if batch_span is not None:
                batch_span.finish()

    def _scatter_gather_locked(
        self,
        tasks: List[_TaskSpec],
        on_error: str,
        use_cache: bool,
        batch_span,
        trace_id: Optional[str],
    ) -> List[SearchResponse]:
        with self._workers_lock:
            workers: List[_Worker] = list(self._workers)
        n = len(workers)
        pinned: List[deque] = [deque() for _ in range(n)]
        shared: deque = deque()
        for spec in tasks:
            if spec.pin is None:
                shared.append(spec)
            else:
                pinned[spec.pin % n].append(spec)
        results: List[Optional[SearchResponse]] = [None] * len(tasks)
        failures: List[Tuple[int, Exception]] = []
        inflight: Dict[int, _Inflight] = {}
        remaining = len(tasks)

        def record_failure(spec: _TaskSpec, exc: Exception) -> None:
            nonlocal remaining
            remaining -= 1
            row_able = isinstance(
                exc, (QueryError, DeadlineExceededError, WorkerCrashedError)
            ) or (
                isinstance(exc, VertexNotFoundError)
                and getattr(exc, "vertex", None) in spec.query.vertices
            )
            if on_error == "return" and row_able:
                results[spec.index] = error_response_for(spec.query, exc)
                self._count("error_rows")
            else:
                failures.append((spec.index, exc))

        def record_result(spec: _TaskSpec, response: SearchResponse) -> None:
            nonlocal remaining
            remaining -= 1
            results[spec.index] = response
            self._count("completed")

        def open_row_span(spec: _TaskSpec, slot: int):
            if batch_span is None:
                return None
            return batch_span.child(
                "row", method=spec.query.method, worker=slot
            )

        def feed(slot: int) -> None:
            """Keep sending ``slot`` its next task until one sticks."""
            while slot not in inflight:
                queue = pinned[slot] if pinned[slot] else shared
                if not queue:
                    return
                spec = queue.popleft()
                task_id = self._next_task_id()
                worker = workers[slot]
                deadline = deadline_seconds_for_config(spec.config)
                if self._send_task(worker, spec, task_id, use_cache, trace_id):
                    inflight[slot] = _Inflight(
                        spec=spec,
                        task_id=task_id,
                        deadline_at=(
                            self._clock() + deadline + self._grace
                            if deadline is not None
                            else None
                        ),
                        span=open_row_span(spec, slot),
                    )
                    return
                # Broken pipe at send: the worker died idle.  Respawn and
                # retry this same task once on the fresh worker (it never
                # started running, so resending cannot double-execute).
                self._count("crashes")
                self._count_worker(worker, "crashes")
                workers[slot] = self._replace_worker(worker)
                if self._send_task(
                    workers[slot], spec, task_id, use_cache, trace_id
                ):
                    inflight[slot] = _Inflight(
                        spec=spec,
                        task_id=task_id,
                        deadline_at=(
                            self._clock() + deadline + self._grace
                            if deadline is not None
                            else None
                        ),
                        span=open_row_span(spec, slot),
                    )
                    return
                record_failure(
                    spec,
                    WorkerCrashedError(worker=slot, pid=workers[slot].process.pid),
                )

        def lose_inflight(slot: int, exc: Exception, counter: str) -> None:
            """The task in flight on ``slot`` is gone; its worker too."""
            entry = inflight.pop(slot)
            worker = workers[slot]
            if entry.span is not None:
                entry.span.annotate(error=counter).finish()
            self._count(counter)
            self._count_worker(worker, "crashes" if counter == "crashes" else "errors")
            workers[slot] = self._replace_worker(worker)
            record_failure(entry.spec, exc)

        for slot in range(n):
            feed(slot)
        while remaining > 0:
            now = self._clock()
            timeout: Optional[float] = None
            for entry in inflight.values():
                if entry.deadline_at is not None:
                    margin = max(0.0, entry.deadline_at - now)
                    timeout = margin if timeout is None else min(timeout, margin)
            conn_slots = {
                id(workers[slot].conn): slot for slot in inflight
            }
            ready = connection_wait(
                [workers[slot].conn for slot in inflight], timeout=timeout
            )
            for conn in ready:
                slot = conn_slots[id(conn)]
                worker = workers[slot]
                try:
                    reply = json_loads(conn.recv())
                except (EOFError, OSError):
                    # Pipe EOF: the worker died with this task in flight.
                    lose_inflight(
                        slot,
                        WorkerCrashedError(worker=slot, pid=worker.process.pid),
                        "crashes",
                    )
                    feed(slot)
                    continue
                entry = inflight.get(slot)
                if entry is None or reply.get("task") != entry.task_id:
                    self._count("stale_results")
                    continue
                del inflight[slot]
                if entry.span is not None:
                    entry.span.attach_remote(reply.get("spans"))
                    entry.span.finish()
                if isinstance(reply.get("counters"), dict):
                    with self._counters_lock:
                        worker.engine_counters = dict(reply["counters"])
                if reply.get("ok"):
                    record_result(entry.spec, decode_response(reply["response"]))
                    self._count_worker(worker, "completed")
                else:
                    self._count_worker(worker, "errors")
                    record_failure(entry.spec, _rebuild_error(reply["error"]))
                feed(slot)
            # Watchdog: tasks whose pool-side deadline lapsed without a
            # reply are lost to a wedged worker — kill it, row the task.
            now = self._clock()
            for slot in list(inflight):
                entry = inflight[slot]
                if entry.deadline_at is not None and now >= entry.deadline_at:
                    deadline = deadline_seconds_for_config(entry.spec.config)
                    lose_inflight(
                        slot,
                        DeadlineExceededError(
                            deadline_ms=(
                                deadline * 1000.0 if deadline is not None else None
                            )
                        ),
                        "deadline_kills",
                    )
                    feed(slot)
        if failures:
            failures.sort(key=lambda pair: pair[0])
            raise failures[0][1]
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # single-query conveniences (the ProcessEngine surface uses these)
    # ------------------------------------------------------------------
    def run_one(
        self,
        query: Query,
        config: Optional[SearchConfig] = None,
        *,
        use_cache: bool = True,
        pin: Optional[int] = None,
    ) -> SearchResponse:
        """One query through the pool; raises exactly like ``search``."""
        return self.run_batch(
            [(query, config, pin)], on_error="raise", use_cache=use_cache
        )[0]

    def explain(self, query: Query, config: Optional[SearchConfig] = None):
        """``engine.explain`` proxied into worker 0."""
        with self._dispatch_lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            self.start()
            with self._workers_lock:
                worker = self._workers[0]
            task_id = self._next_task_id()
            message = {
                "op": "explain",
                "task": task_id,
                "query": encode_query(query),
                "config": encode_config(config),
            }
            try:
                worker.conn.send(json_dumps(message))
                while True:
                    reply = json_loads(worker.conn.recv())
                    if reply.get("task") == task_id:
                        break
                    self._count("stale_results")
            except (BrokenPipeError, EOFError, OSError):
                self._count("crashes")
                self._count_worker(worker, "crashes")
                self._replace_worker(worker)
                raise WorkerCrashedError(worker=worker.index)
            if reply.get("ok"):
                return reply["explain"]
            raise _rebuild_error(reply["error"])


def deadline_seconds_for_config(config: Optional[SearchConfig]) -> Optional[float]:
    """The resolved config's deadline in seconds (``None`` = no deadline)."""
    if config is None:
        return None
    deadline_ms = config.deadline_ms
    return None if deadline_ms is None else deadline_ms / 1000.0


__all__ = [
    "DEFAULT_PROCESS_WORKERS",
    "POOL_COUNTER_NAMES",
    "ProcessWorkerPool",
    "WorkerTaskError",
]
