"""The worker-process entry point of the multi-process compute backend.

:func:`worker_main` is a top-level importable function (a requirement of
the ``spawn`` start method) that attaches the shared graph, builds a
local serving engine and answers tasks from its pipe until told to stop.
Every message in both directions is a JSON document produced and parsed
by the wire codec (:mod:`repro.server.protocol`) — the same marshalling
the HTTP gateway speaks, so responses round-trip with exactly the same
fidelity guarantees (sorted vertex sets, ``inf`` encoding, NaN refusal).

Protocol (parent -> worker)::

    {"op": "search", "task": int, "query": <wire query>,
     "config": <wire config> | null, "use_cache": bool}
    {"op": "explain", "task": int, "query": ..., "config": ...}
    {"op": "stats", "task": int}
    {"op": "shutdown"}

Worker -> parent replies carry the task id, an ``ok`` flag, either a
wire-encoded response or a structured error descriptor (enough for the
parent to re-raise the exact caller error), and a piggybacked snapshot of
the worker engine's counters, so ``/stats`` never needs a blocking
round-trip into a busy worker.

Failure discipline: a *caller* error (malformed query, missing query
vertex, unknown method, expired deadline) is classified worker-side with
the same :func:`~repro.api.engine.is_caller_error` rule the threaded path
applies, shipped as a descriptor and re-raised or row-ified in the
parent.  An *internal* error is reported as ``kind="internal"`` — the
parent always raises those, exactly like the threaded path.  The worker
never dies on a query error; only a kill / crash ends the loop, which the
parent observes as pipe EOF.

Clock hygiene (BCC002 covers this package): the only clock in this file
is the deadline enforcement delegated to
:func:`~repro.api.engine.run_with_deadline`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.api.config import SearchConfig
from repro.api.engine import (
    BCCEngine,
    deadline_seconds_for,
    is_caller_error,
    run_with_deadline,
)
from repro.exceptions import (
    DeadlineExceededError,
    QueryError,
    UnknownMethodError,
    VertexNotFoundError,
)
from repro.obs.tracing import Trace
from repro.parallel.shm import GraphHandle, attach_graph
from repro.server.protocol import (
    decode_config,
    decode_query,
    decode_trace_context,
    encode_response,
    json_dumps,
    json_loads,
    jsonable,
)

#: Error kinds a worker reports; the parent rebuilds the matching
#: exception type from this tag (never by parsing messages).
ERROR_KINDS = ("query", "vertex", "unknown-method", "deadline", "internal")


def _classify_error(query, exc: Exception) -> Dict[str, object]:
    """A JSON-safe descriptor from which the parent re-raises ``exc``."""
    message = exc.args[0] if exc.args and isinstance(exc.args[0], str) else str(exc)
    descriptor: Dict[str, object] = {"message": message, "caller": False}
    if isinstance(exc, DeadlineExceededError):
        descriptor["kind"] = "deadline"
        descriptor["caller"] = True
        descriptor["deadline_ms"] = exc.deadline_ms
    elif isinstance(exc, VertexNotFoundError):
        descriptor["kind"] = "vertex"
        vertex = getattr(exc, "vertex", None)
        descriptor["vertex"] = vertex if isinstance(vertex, (int, str)) else str(vertex)
        descriptor["caller"] = is_caller_error(query, exc)
    elif isinstance(exc, UnknownMethodError):
        descriptor["kind"] = "unknown-method"
        descriptor["method"] = str(getattr(exc, "method", ""))
        # Ship the known-method list so the parent-side rebuild produces
        # the *identical* message the threaded path would — error rows
        # are part of the value-for-value parity surface.
        descriptor["known"] = [str(k) for k in getattr(exc, "known", ())]
        descriptor["caller"] = True
    elif isinstance(exc, QueryError):
        descriptor["kind"] = "query"
        descriptor["caller"] = True
    else:
        descriptor["kind"] = "internal"
        descriptor["type"] = type(exc).__name__
    return descriptor


def _build_engine(handle: GraphHandle, attachment) -> object:
    """The worker-local serving engine the handle asks for."""
    config = decode_config(handle.config)
    if config is None:
        config = SearchConfig()
    # Worker-side kernels must not recurse into another pool: the batch
    # transport decision was made in the parent, so the worker serves the
    # same queries through the plain CSR fast path.
    if config.backend == "process":
        config = config.replace(backend="csr")
    if handle.sharded:
        from repro.serving.sharded import ShardedBCCEngine  # deferred import

        return ShardedBCCEngine(
            attachment.graph,
            config,
            result_cache_size=handle.result_cache_size,
        )
    if attachment.snapshot is not None:
        from repro.store.snapshot import StoredBCIndex  # deferred import

        engine = BCCEngine(
            attachment.graph,
            config,
            index=StoredBCIndex(
                attachment.graph, attachment.snapshot, backend=config.backend
            ),
            result_cache_size=handle.result_cache_size,
        )
        return engine.prepare()
    return BCCEngine(
        attachment.graph, config, result_cache_size=handle.result_cache_size
    ).prepare()


def _counters(engine) -> Dict[str, int]:
    return engine.counters_snapshot()


def _serve_search(engine, message: Dict[str, object]) -> Dict[str, object]:
    """Run one search under its (already resolved) config and deadline.

    When the message carries a trace context (the parent has an active
    trace), the search runs under a worker-local :class:`Trace` and the
    resulting span tree rides back on the reply as ``spans`` — the parent
    grafts it under the task's row span.  Without one, the reply stays
    byte-identical to the untraced protocol.
    """
    request_id = decode_trace_context(message.get("trace"))
    if request_id is None:
        return _serve_search_untraced(engine, message)
    trace = Trace(request_id, name="worker")
    with trace:
        reply = _serve_search_untraced(engine, message)
    reply["spans"] = trace.span_payload()
    return reply


def _serve_search_untraced(
    engine, message: Dict[str, object]
) -> Dict[str, object]:
    query = decode_query(message["query"])
    config = decode_config(message.get("config"))
    use_cache = bool(message.get("use_cache", True))
    deadline = deadline_seconds_for(config, getattr(engine, "config", None))
    try:
        response = run_with_deadline(
            lambda: engine.search(query, config=config, use_cache=use_cache),
            deadline,
            what=f"worker:{query.method}",
        )
        return {
            "task": message["task"],
            "ok": True,
            "response": encode_response(response),
        }
    except Exception as exc:  # descriptor'd and re-raised parent-side
        return {
            "task": message["task"],
            "ok": False,
            "error": _classify_error(query, exc),
        }


def worker_main(worker_id: int, conn, handle_text: str) -> None:
    """Attach, build, then serve tasks until shutdown or pipe EOF.

    Any failure *before* the ready message (attach error, bad handle) is
    reported as a ``ready: false`` message so the parent can raise a
    clear error instead of diagnosing a silent exit.
    """
    try:
        handle = GraphHandle.from_payload(json_loads(handle_text))
        attachment = attach_graph(handle)
        engine = _build_engine(handle, attachment)
    except Exception as exc:  # surfaced parent-side at spawn
        try:
            conn.send(
                json_dumps(
                    {"ready": False, "worker": worker_id, "error": str(exc)}
                )
            )
        finally:
            conn.close()
        return
    conn.send(json_dumps({"ready": True, "worker": worker_id}))
    while True:
        try:
            text = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        message = json_loads(text)
        op = message.get("op")
        if op == "shutdown":
            break
        if op == "search":
            reply = _serve_search(engine, message)
        elif op == "explain":
            query = decode_query(message["query"])
            config = decode_config(message.get("config"))
            try:
                reply = {
                    "task": message["task"],
                    "ok": True,
                    "explain": jsonable(engine.explain(query, config=config)),
                }
            except Exception as exc:
                reply = {
                    "task": message["task"],
                    "ok": False,
                    "error": _classify_error(query, exc),
                }
        elif op == "stats":
            reply = {"task": message["task"], "ok": True}
        else:
            reply = {
                "task": message.get("task", -1),
                "ok": False,
                "error": {
                    "kind": "internal",
                    "caller": False,
                    "message": f"unknown worker op {op!r}",
                },
            }
        reply["counters"] = _counters(engine)
        try:
            conn.send(json_dumps(reply))
        except (BrokenPipeError, OSError):  # parent went away mid-reply
            break
    conn.close()
    # Drop every engine/graph reference to the mapped storage before
    # releasing the views, so the SharedMemory blocks can close their
    # mappings without "exported pointers exist" noise at exit.
    del engine
    attachment.graph._frozen = None
    attachment.release()
