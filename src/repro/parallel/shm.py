"""Zero-copy graph transport for the multi-process compute backend.

A frozen graph's CSR snapshot is four flat little-endian integer arrays
(offsets, neighbours, per-id labels, optionally coreness) plus two small
object sequences (vertex order, label order).  This module moves exactly
that across the process boundary without copying the arrays per worker:

* :func:`export_graph` writes each array once into a
  :class:`multiprocessing.shared_memory.SharedMemory` block and returns a
  :class:`SharedGraphExport` — the owner of the blocks — plus a
  :class:`GraphHandle`, a small JSON-safe description every worker can
  receive over a pipe.
* :func:`attach_graph` (worker side) maps the named blocks back in,
  casts ``memoryview`` s over them, and rebuilds a served
  :class:`~repro.graph.labeled_graph.LabeledGraph` whose frozen CSR
  snapshot *is* the mapped storage, via :meth:`CSRGraph.attach`.
  N workers therefore share one physical copy of the adjacency.
* When a ``.bccsnap`` store snapshot already exists, the handle can point
  at the file instead (``kind="snapshot"``): workers ``mmap`` it directly
  and no shared-memory blocks are created at all.

Availability is probed, not assumed: :func:`shared_memory_available`
actually creates (and unlinks) a tiny segment, so a restricted
``/dev/shm`` or a missing platform facility reports ``False`` and the
engine layer falls back to threads instead of crashing mid-batch
(:data:`~repro.exceptions.REASON_WORKER_CRASHED` is for dying workers,
not for machines that never could run them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.graph.csr import CSRGraph
from repro.graph.labeled_graph import LabeledGraph

try:  # pragma: no cover - import probe, exercised via shared_memory_available
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - platform without _multiprocessing
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

#: Segment name -> array typecode, mirroring the ``.bccsnap`` layout
#: (offsets are 64-bit so ``2|E|`` cannot overflow; ids and label ids fit
#: 32 bits by construction).
SEGMENT_TYPECODES = {
    "offsets": "q",
    "neighbors": "i",
    "labels": "i",
    "coreness": "i",
}


class ProcessBackendUnavailable(ReproError):
    """This host (or this graph) cannot use the process backend.

    Raised by :func:`export_graph` when shared memory cannot be created
    (restricted ``/dev/shm``, missing platform support) or when the
    graph's vertices/labels do not survive the JSON wire codec the pool
    marshals tasks through.  The engine layer catches it and falls back
    to the threaded batch path with a one-time warning and a counter —
    ``backend="auto"`` must degrade, never raise.
    """


def _probe_shared_memory() -> bool:
    """Actually create-and-unlink one tiny segment (the honest probe)."""
    if shared_memory is None:
        return False
    try:
        block = shared_memory.SharedMemory(create=True, size=8)
    except (OSError, ValueError):
        return False
    try:
        block.close()
        block.unlink()
    except OSError:  # pragma: no cover - unlink raced by a reaper
        pass
    return True


_AVAILABLE: Optional[bool] = None


def shared_memory_available() -> bool:
    """Whether this host can create shared-memory segments (cached probe)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        _AVAILABLE = _probe_shared_memory()
    return _AVAILABLE


def _attach_block(name: str):
    """Attach an existing segment without adopting its lifetime.

    The parent owns every block and unlinks them in
    :meth:`SharedGraphExport.close`; a worker that also registered the
    segment with the (shared) ``resource_tracker`` would fight the
    parent over cleanup.  Python 3.13 grew ``track=False`` for exactly
    this; on older versions the attach-side registration is suppressed
    (sending an *unregister* instead would strip the parent's own
    registration — spawn children share the parent's tracker process).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


def _wire_scalar(value) -> bool:
    """Whether ``value`` survives the JSON wire codec bit-for-bit."""
    if isinstance(value, bool) or value is None:
        return False
    return isinstance(value, (int, str))


@dataclass(frozen=True)
class GraphHandle:
    """A JSON-safe description a worker needs to rebuild the served graph.

    ``kind="shm"`` names shared-memory segments; ``kind="snapshot"``
    points at a ``.bccsnap`` file the worker maps directly.  ``sharded``
    asks the worker to build a :class:`ShardedBCCEngine` over the thawed
    graph (partitioning is deterministic in iteration order, so parent
    and worker agree on shard ids).  ``config`` is the engine base config
    as a wire-codec payload.
    """

    kind: str  # "shm" | "snapshot"
    segments: Dict[str, Tuple[str, str, int]]  # name -> (shm name, typecode, count)
    vertices: Optional[List[object]]  # None: identity (vertex i == id i)
    num_vertices: int
    labels: List[object]
    config: Optional[Dict[str, object]]
    sharded: bool = False
    snapshot_path: Optional[str] = None
    result_cache_size: int = 0

    def to_payload(self) -> Dict[str, object]:
        """The JSON document shipped to workers through the wire codec."""
        return {
            "kind": self.kind,
            "segments": {
                name: list(ref) for name, ref in self.segments.items()
            },
            "vertices": self.vertices,
            "num_vertices": self.num_vertices,
            "labels": self.labels,
            "config": self.config,
            "sharded": self.sharded,
            "snapshot_path": self.snapshot_path,
            "result_cache_size": self.result_cache_size,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "GraphHandle":
        return cls(
            kind=payload["kind"],
            segments={
                name: tuple(ref) for name, ref in payload["segments"].items()
            },
            vertices=payload["vertices"],
            num_vertices=payload["num_vertices"],
            labels=list(payload["labels"]),
            config=payload["config"],
            sharded=bool(payload.get("sharded", False)),
            snapshot_path=payload.get("snapshot_path"),
            result_cache_size=int(payload.get("result_cache_size", 0)),
        )


@dataclass
class SharedGraphExport:
    """Owner of the shared-memory blocks behind one exported graph.

    Created by :func:`export_graph` in the parent; :meth:`close` unlinks
    every block (idempotent).  The pool closes its export when it shuts
    down; a :class:`~repro.server.replicas.ReplicaSet` with process
    members shares one export across all member pools and closes it once.
    """

    handle: GraphHandle
    blocks: List[object] = field(default_factory=list)
    closed: bool = False

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for block in self.blocks:
            try:
                block.close()
                block.unlink()
            except OSError:  # pragma: no cover - already reaped
                pass
        self.blocks.clear()


def _export_segment(values: Sequence[int], typecode: str):
    """Copy one flat integer sequence into a fresh shared-memory block."""
    if isinstance(values, array) and values.typecode == typecode:
        data = values
    else:
        data = array(typecode, values)
    raw = data.tobytes()
    block = shared_memory.SharedMemory(create=True, size=max(1, len(raw)))
    block.buf[: len(raw)] = raw
    return block, len(data)


def export_graph(
    graph: LabeledGraph,
    config_payload: Optional[Dict[str, object]] = None,
    *,
    sharded: bool = False,
    snapshot_path: Optional[str] = None,
    result_cache_size: int = 0,
) -> SharedGraphExport:
    """Export ``graph``'s frozen CSR snapshot for worker processes.

    Freezes the graph if needed (the caller's engine counts that freeze by
    preparing first), then either records ``snapshot_path`` for direct
    worker-side ``mmap`` (no blocks created) or writes each CSR segment
    into shared memory once.  Raises :class:`ProcessBackendUnavailable`
    when the host cannot create shared memory or the graph's vertex /
    label objects would not survive the JSON wire codec.
    """
    csr = graph.freeze()
    order = csr.interner.vertices()
    label_order = [csr.interner.label_of(i) for i in range(csr.interner.num_labels())]
    for value in label_order:
        if not _wire_scalar(value):
            raise ProcessBackendUnavailable(
                f"label {value!r} does not survive the JSON wire codec; "
                "the process backend needs int/str labels"
            )
    identity = all(
        isinstance(v, int) and not isinstance(v, bool) and v == i
        for i, v in enumerate(order)
    )
    vertices: Optional[List[object]] = None
    if not identity:
        for value in order:
            if not _wire_scalar(value):
                raise ProcessBackendUnavailable(
                    f"vertex {value!r} does not survive the JSON wire codec; "
                    "the process backend needs int/str vertices"
                )
        vertices = list(order)
    if snapshot_path is not None:
        handle = GraphHandle(
            kind="snapshot",
            segments={},
            vertices=vertices,
            num_vertices=len(order),
            labels=label_order,
            config=config_payload,
            sharded=sharded,
            snapshot_path=str(snapshot_path),
            result_cache_size=result_cache_size,
        )
        return SharedGraphExport(handle=handle, blocks=[])
    if not shared_memory_available():
        raise ProcessBackendUnavailable(
            "multiprocessing.shared_memory is unavailable on this host "
            "(restricted /dev/shm or missing platform support)"
        )
    blocks: List[object] = []
    segments: Dict[str, Tuple[str, str, int]] = {}
    payload: Dict[str, Sequence[int]] = {
        "offsets": csr.offsets,
        "neighbors": csr.neighbors,
        "labels": csr.labels,
    }
    if csr._coreness is not None:  # ship a warm peel; workers skip theirs
        payload["coreness"] = csr._coreness
    try:
        for name, values in payload.items():
            typecode = SEGMENT_TYPECODES[name]
            block, count = _export_segment(values, typecode)
            blocks.append(block)
            segments[name] = (block.name, typecode, count)
    except (OSError, ValueError) as exc:
        for block in blocks:
            try:
                block.close()
                block.unlink()
            except OSError:  # pragma: no cover
                pass
        raise ProcessBackendUnavailable(
            f"could not write CSR segments into shared memory: {exc}"
        ) from exc
    handle = GraphHandle(
        kind="shm",
        segments=segments,
        vertices=vertices,
        num_vertices=len(order),
        labels=label_order,
        config=config_payload,
        sharded=sharded,
        result_cache_size=result_cache_size,
    )
    return SharedGraphExport(handle=handle, blocks=blocks)


@dataclass
class WorkerAttachment:
    """A worker's view of the exported graph: served graph + mapped refs.

    ``keepalive`` pins the shared-memory blocks (or the mapped snapshot)
    and ``views`` the cast memoryviews over them, for as long as the CSR
    storage may be read.  :meth:`release` drops the views *before* the
    blocks — a ``SharedMemory`` cannot close its mapping while cast
    views still export pointers into it — and never unlinks: the parent
    owns segment lifetime.
    """

    graph: LabeledGraph
    csr: CSRGraph
    snapshot: Optional[object]
    keepalive: List[object] = field(default_factory=list)
    views: List[memoryview] = field(default_factory=list)

    def release(self) -> None:
        """Release views then close maps (worker shutdown path)."""
        for view in self.views:
            try:
                view.release()
            except BufferError:  # pragma: no cover - still exported elsewhere
                pass
        self.views = []
        for ref in self.keepalive:
            close = getattr(ref, "close", None)
            if close is not None:
                try:
                    close()
                except (OSError, BufferError):  # pragma: no cover
                    pass
        self.keepalive = []


def attach_graph(handle: GraphHandle) -> WorkerAttachment:
    """Rebuild the served graph inside a worker process (zero-copy).

    The mapped segments become the frozen CSR storage through
    :meth:`CSRGraph.attach`; the object graph is thawed from it — thaw
    adds vertices in id order, so worker-side iteration order (and hence
    shard partitioning and sweep tie-breaks) is identical to the
    parent's — and the CSR is installed as its current frozen snapshot so
    ``prepare()`` freezes nothing.
    """
    order: Sequence[object] = (
        range(handle.num_vertices) if handle.vertices is None else handle.vertices
    )
    snapshot = None
    keepalive: List[object] = []
    views: Dict[str, memoryview] = {}
    if handle.kind == "snapshot":
        from repro.store.snapshot import Snapshot  # deferred: store imports api

        snapshot = Snapshot(handle.snapshot_path)
        csr = snapshot.as_csr_graph()
        keepalive.append(snapshot)
    else:
        for name, (shm_name, typecode, count) in handle.segments.items():
            block = _attach_block(shm_name)
            keepalive.append(block)
            itemsize = array(typecode).itemsize
            views[name] = memoryview(block.buf)[: count * itemsize].cast(typecode)
        csr = CSRGraph.attach(
            list(order),
            handle.labels,
            views["offsets"],
            views["neighbors"],
            views["labels"],
            coreness=views.get("coreness"),
        )
    graph = csr.thaw()
    # Friend access, mirroring LabeledGraph.freeze's own cache fill (and
    # Snapshot.attach_engine): the mapped CSR is the frozen snapshot.
    graph._frozen = csr
    graph._frozen_version = graph.version()
    return WorkerAttachment(
        graph=graph,
        csr=csr,
        snapshot=snapshot,
        keepalive=keepalive,
        views=list(views.values()),
    )
