"""Multi-process compute backend: shared-memory CSR workers.

The GIL caps every pure-Python kernel at one core; this package breaks
that ceiling for *batches* by exporting a frozen graph's CSR arrays into
shared memory once and serving queries from N worker processes:

* :mod:`repro.parallel.shm` — zero-copy graph transport
  (:func:`export_graph` / :func:`attach_graph`, availability probing);
* :mod:`repro.parallel.worker` — the worker-process loop, speaking the
  wire codec;
* :mod:`repro.parallel.pool` — :class:`ProcessWorkerPool`,
  one-task-in-flight dispatch with deadlines, crash detection and
  respawn;
* :mod:`repro.parallel.process_engine` — :class:`ProcessEngine`, the
  ``ServingEngine``-surface wrapper replica sets embed.

Callers normally never touch this package directly: pass
``backend="process"`` (or let ``backend="auto"`` pick it for large
compute-bound batches) to ``BCCEngine.search_many`` /
``ShardedBCCEngine.search_many``, or ``member_backend="process"`` to
:class:`~repro.server.replicas.ReplicaSet`.
"""

from repro.parallel.pool import (
    DEFAULT_PROCESS_WORKERS,
    POOL_COUNTER_NAMES,
    ProcessWorkerPool,
    WorkerTaskError,
)
from repro.parallel.process_engine import ProcessEngine
from repro.parallel.shm import (
    GraphHandle,
    ProcessBackendUnavailable,
    SharedGraphExport,
    WorkerAttachment,
    attach_graph,
    export_graph,
    shared_memory_available,
)

__all__ = [
    "DEFAULT_PROCESS_WORKERS",
    "POOL_COUNTER_NAMES",
    "GraphHandle",
    "ProcessBackendUnavailable",
    "ProcessEngine",
    "ProcessWorkerPool",
    "SharedGraphExport",
    "WorkerAttachment",
    "WorkerTaskError",
    "attach_graph",
    "export_graph",
    "shared_memory_available",
]
