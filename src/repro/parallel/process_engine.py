"""A ``ServingEngine``-surface wrapper over a :class:`ProcessWorkerPool`.

:class:`ProcessEngine` makes a worker pool quack like a
:class:`~repro.api.engine.BCCEngine`: ``search`` / ``search_many`` /
``explain`` / ``counters_snapshot`` / ``stats``, so the serving layers
that dispatch on that surface — most importantly
:class:`~repro.server.replicas.ReplicaSet`, which gains process-backed
members through it — compose without special cases.

Failure semantics at the replica seam: a member whose worker dies raises
:class:`~repro.exceptions.WorkerCrashedError`, which
:func:`~repro.api.engine.is_caller_error` classifies as a *replica*
failure — the set fails over and the health breaker records it.  The
pool has already respawned the worker by then, so the breaker's next
probe hits a healthy member and re-admits it: exactly the PR 6 lifecycle,
with a process crash instead of an injected fault.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Union

from repro.api.config import SearchConfig
from repro.api.query import BatchQuery, Query, SearchResponse
from repro.exceptions import QueryError
from repro.parallel.pool import DEFAULT_PROCESS_WORKERS, ProcessWorkerPool
from repro.parallel.shm import SharedGraphExport


class ProcessEngine:
    """Serve one graph entirely from worker processes.

    Parameters mirror :class:`~repro.api.engine.BCCEngine` where they
    apply; ``workers`` sizes the pool and ``export`` lets several engines
    (e.g. replica-set members) share one shared-memory graph export.  The
    engine owns its pool — :meth:`close` shuts the workers down — but
    never an export it was handed.
    """

    def __init__(
        self,
        graph=None,
        config: Optional[SearchConfig] = None,
        *,
        workers: int = DEFAULT_PROCESS_WORKERS,
        export: Optional[SharedGraphExport] = None,
        snapshot_path: Optional[str] = None,
        result_cache_size: int = 0,
        fault_plan: Optional[object] = None,
        clock=time.monotonic,
        start_method: str = "spawn",
    ) -> None:
        self.graph = graph
        self.config = config if config is not None else SearchConfig()
        self._pool = ProcessWorkerPool(
            graph,
            self.config,
            workers,
            export=export,
            snapshot_path=snapshot_path,
            result_cache_size=result_cache_size,
            fault_plan=fault_plan,
            clock=clock,
            start_method=start_method,
        )

    @property
    def pool(self) -> ProcessWorkerPool:
        return self._pool

    # ------------------------------------------------------------------
    # ServingEngine surface
    # ------------------------------------------------------------------
    def prepare(self) -> "ProcessEngine":
        """Start the workers (idempotent) so the first query serves warm."""
        self._pool.start()
        return self

    def is_prepared(self) -> bool:
        return self._pool.is_started()

    def _resolve_config(self, query: Query, override: Optional[SearchConfig]):
        if override is not None:
            return override
        if query.config is not None:
            return query.config
        return self.config

    def search(
        self,
        query: Query,
        *,
        config: Optional[SearchConfig] = None,
        instrumentation: Optional[object] = None,
        use_cache: bool = True,
    ) -> SearchResponse:
        """One query through the pool (raises exactly like ``BCCEngine``).

        ``instrumentation`` cannot cross the process boundary — the wire
        codec deliberately does not marshal live counter objects — so a
        caller that needs it must use an in-process engine.
        """
        if instrumentation is not None:
            raise QueryError(
                "the process backend cannot fill caller-supplied "
                "instrumentation; use an in-process engine for instrumented runs"
            )
        return self._pool.run_one(
            query, self._resolve_config(query, config), use_cache=use_cache
        )

    def search_many(
        self,
        queries: Union[BatchQuery, Iterable[Query]],
        *,
        config: Optional[SearchConfig] = None,
        instrumentation: Optional[object] = None,
        on_error: str = "raise",
        max_workers: int = 1,
        use_cache: bool = True,
    ) -> List[SearchResponse]:
        """Batch dispatch through the pool, with ``serve_batch`` semantics.

        Validation and config precedence (call > query > batch > engine)
        match :func:`repro.api.engine.serve_batch` exactly; dispatch —
        including per-row deadlines — happens pool-side.  ``max_workers``
        is accepted for surface compatibility; parallelism is the pool's
        worker count.
        """
        if instrumentation is not None:
            raise QueryError(
                "the process backend cannot fill caller-supplied "
                "instrumentation; use an in-process engine for instrumented runs"
            )
        if on_error not in ("raise", "return"):
            raise QueryError(
                f"unknown on_error policy {on_error!r}; known: ('raise', 'return')"
            )
        if max_workers < 1:
            raise QueryError("max_workers must be >= 1")
        batch_config: Optional[SearchConfig] = None
        if isinstance(queries, BatchQuery):
            batch_config = queries.config
            items = list(queries)
        else:
            items = list(BatchQuery(queries=tuple(queries)).queries)
        specs = []
        for query in items:
            if config is not None:
                resolved = config
            elif query.config is not None:
                resolved = query.config
            elif batch_config is not None:
                resolved = batch_config
            else:
                resolved = self.config
            specs.append((query, resolved, None))
        return self._pool.run_batch(specs, on_error=on_error, use_cache=use_cache)

    def explain(
        self, query: Query, *, config: Optional[SearchConfig] = None
    ) -> Dict[str, object]:
        return self._pool.explain(query, self._resolve_config(query, config))

    # ------------------------------------------------------------------
    # stats surface
    # ------------------------------------------------------------------
    def counters_snapshot(self) -> Dict[str, int]:
        """Engine counters aggregated across workers (last piggybacked)."""
        from repro.serving.stats import aggregate_counters, zero_engine_counters

        stats = self._pool.stats()
        parts = [
            block["engine"] for block in stats["workers"] if block.get("engine")
        ]
        counters = aggregate_counters([zero_engine_counters(), *parts])
        return counters

    def result_cache_info(self) -> Dict[str, object]:
        """Worker-side caches cannot be inspected without a round-trip."""
        counters = self.counters_snapshot()
        hits = counters.get("result_cache_hits", 0)
        misses = counters.get("result_cache_misses", 0)
        lookups = hits + misses
        return {
            "capacity": None,
            "entries": None,
            "entries_per_method": {},
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else None,
            "policy": None,
        }

    def worker_stats(self) -> Dict[str, object]:
        """The pool's ``/stats`` block (size, counters, per-worker rows)."""
        return self._pool.stats()

    def worker_pids(self) -> List[int]:
        return self._pool.worker_pids()

    def has_index(self) -> bool:
        """Index state lives worker-side; report from piggybacked counters."""
        return self.counters_snapshot().get("index_builds", 0) > 0

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "ProcessEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessEngine(workers={self._pool.workers}, "
            f"started={self._pool.is_started()})"
        )
