"""Exception hierarchy for the BCC reproduction library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without also
catching programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class GraphError(ReproError):
    """Base class for errors related to graph construction or access."""


class VertexNotFoundError(GraphError, KeyError):
    """Raised when an operation references a vertex not present in the graph."""

    def __init__(self, vertex) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge not present in the graph."""

    def __init__(self, u, v) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class LabelError(GraphError):
    """Raised when vertex labels are missing or inconsistent with a query."""


class QueryError(ReproError):
    """Raised when a community-search query is malformed.

    Examples include query vertices that do not exist, query vertices that
    share a label when distinct labels are required, or non-positive
    structural parameters.
    """


class UnknownMethodError(QueryError, ValueError):
    """Raised when a search-method name is not present in the method registry."""

    def __init__(self, method, known=()) -> None:
        message = f"unknown method {method!r}"
        if known:
            message += f"; known: {list(known)}"
        super().__init__(message)
        self.method = method
        self.known = tuple(known)


#: Machine-readable reasons attached to :class:`EmptyCommunityError` (and
#: surfaced on ``SearchResponse.reason`` when a search finds no community).
REASON_NO_CANDIDATE = "no-candidate"
REASON_NO_LEADER_PAIR = "no-leader-pair"
REASON_NO_COMMUNITY = "no-community"
REASON_QUERY_DISCONNECTED = "query-disconnected"
REASON_MISSING_VERTEX = "missing-query-vertex"
REASON_NO_TRUSS = "no-truss"
REASON_NO_CORE = "no-core"
#: The query vertices live in different connected components, so no
#: connected community can contain them — the sharded serving layer
#: (:class:`repro.serving.ShardedBCCEngine`) answers ``status="empty"``
#: with this reason without touching any shard.
REASON_CROSS_SHARD = "cross-shard"

#: Machine-readable reasons surfaced on ``status="error"`` responses when
#: ``BCCEngine.search_many(on_error="return")`` converts a per-query failure
#: into a position-aligned error response instead of aborting the batch.
REASON_INVALID_QUERY = "invalid-query"
REASON_UNKNOWN_METHOD = "unknown-method"

#: The query's deadline (``SearchConfig.deadline_ms``) expired before an
#: answer was produced.  Surfaced as a position-aligned error row by
#: ``search_many`` (one stalled query cannot wedge a batch) and enforced per
#: request by the HTTP gateway, where it maps to ``504 Gateway Timeout``.
REASON_DEADLINE_EXCEEDED = "deadline-exceeded"

#: No healthy replica can serve the graph right now (every replica is
#: ejected by the health tracker).  The gateway answers a cached degraded
#: response when it has one, else ``503 Service Unavailable`` +
#: ``Retry-After``.
REASON_UNAVAILABLE = "unavailable"

#: A worker process of the multi-process compute backend died (was killed,
#: segfaulted, or exited) while the query was in flight.  The pool respawns
#: the worker and ``search_many(on_error="return")`` converts the loss into
#: a position-aligned error row — never a hang.  A transient server-side
#: condition, so the gateway maps it to ``503``.
REASON_WORKER_CRASHED = "worker-crashed"

#: Every registered reason code, derived from the module globals so a new
#: ``REASON_*`` constant is automatically part of the contract (and the
#: exhaustiveness test fails until :data:`HTTP_STATUS_BY_REASON` maps it).
REASON_CODES = tuple(
    sorted(
        value
        for name, value in globals().items()
        if name.startswith("REASON_") and isinstance(value, str)
    )
)

#: The single reason→HTTP-status table the HTTP gateway serves from.
#:
#: Only ``status="error"`` responses consult it: a missing *query* vertex is
#: the HTTP resource-not-found case (404), every other caller error is a bad
#: request (400).  Empty answers — including the sharded router's
#: cross-shard short-circuit — are *successful* searches whose result is "no
#: community", so they ship as 200 regardless of their reason code; the
#: table still carries a 200 for each of them so the mapping is total over
#: :data:`REASON_CODES` (enforced by an exhaustiveness test).
HTTP_STATUS_BY_REASON = {
    REASON_NO_CANDIDATE: 200,
    REASON_NO_LEADER_PAIR: 200,
    REASON_NO_COMMUNITY: 200,
    REASON_QUERY_DISCONNECTED: 200,
    REASON_NO_TRUSS: 200,
    REASON_NO_CORE: 200,
    REASON_CROSS_SHARD: 200,
    REASON_MISSING_VERTEX: 404,
    REASON_INVALID_QUERY: 400,
    REASON_UNKNOWN_METHOD: 400,
    REASON_UNAVAILABLE: 503,
    REASON_WORKER_CRASHED: 503,
    REASON_DEADLINE_EXCEEDED: 504,
}


def http_status_for_response(status: str, reason=None) -> int:
    """The HTTP status code for a ``SearchResponse``-shaped answer.

    ``status`` is the response's ``"ok" | "empty" | "error"``; only error
    responses consult :data:`HTTP_STATUS_BY_REASON` (an unknown error reason
    defaults to 400 — a caller error is never a server success).
    """
    if status != "error":
        return 200
    return HTTP_STATUS_BY_REASON.get(reason, 400)


class EmptyCommunityError(ReproError):
    """Raised when no community satisfying the requested constraints exists.

    The registered search implementations raise this internally with a
    machine-readable ``reason`` code (one of the ``REASON_*`` constants);
    :class:`repro.api.BCCEngine` converts it into a ``SearchResponse`` with
    ``status="empty"`` while the legacy free functions keep returning
    ``None``.
    """

    def __init__(self, message: str = "", reason: str = REASON_NO_COMMUNITY) -> None:
        super().__init__(message or f"no community exists ({reason})")
        self.reason = reason


class IndexNotBuiltError(ReproError):
    """Raised when an index-based method is invoked before building the index."""


class DatasetError(ReproError):
    """Raised when a synthetic dataset generator receives invalid parameters."""


class DeadlineExceededError(ReproError):
    """A serving deadline (``SearchConfig.deadline_ms``) expired.

    Raised at the serving seams that can actually enforce a wall-clock
    bound — ``search_many``'s per-row dispatch and the HTTP gateway's
    request handler — never from inside a kernel (a pure-Python peeling
    loop cannot be preempted).  Carries the expired budget so error rows
    and 504 payloads can report it.
    """

    def __init__(self, message: str = "", deadline_ms=None) -> None:
        if not message:
            budget = f"{deadline_ms:g}ms" if deadline_ms is not None else "deadline"
            message = f"deadline of {budget} exceeded before an answer was produced"
        super().__init__(message)
        self.deadline_ms = deadline_ms


class AllReplicasEjectedError(ReproError):
    """Every replica of a served graph is currently ejected as unhealthy.

    Raised by ``ReplicaSet`` routing when the health tracker has opened the
    circuit on all replicas and none is due for a re-admission probe.  The
    HTTP gateway converts it into a degraded cached answer or a ``503`` +
    ``Retry-After`` — never a hang.
    """

    def __init__(self, name: str = "replica-set", replicas: int = 0) -> None:
        super().__init__(
            f"all {replicas} replicas of {name!r} are ejected as unhealthy"
        )
        self.name = name
        self.replicas = replicas


class WorkerCrashedError(ReproError):
    """A process-backend worker died while this query was in flight.

    Raised by :class:`repro.parallel.ProcessWorkerPool` under
    ``on_error="raise"`` (and converted into a position-aligned
    ``status="error"`` / ``reason="worker-crashed"`` row under
    ``"return"``).  The pool has already respawned the worker by the time
    this surfaces; retrying the query is safe and usually succeeds, which
    is why the replica health tracker treats it as an ordinary replica
    failure (failover + breaker bookkeeping, never a caller error).
    """

    def __init__(self, message: str = "", worker: int = -1, pid=None) -> None:
        if not message:
            who = f"worker {worker}" if worker >= 0 else "a worker"
            if pid is not None:
                who += f" (pid {pid})"
            message = f"{who} died while the query was in flight"
        super().__init__(message)
        self.worker = worker
        self.pid = pid


class StoreError(ReproError):
    """A persisted index snapshot cannot be written, read or trusted.

    Raised by :mod:`repro.store` for structural problems — bad magic,
    format-version skew, truncated files, checksum mismatches, vertices
    that cannot round-trip through the header — always with a message
    naming the file and what failed, so an operator can tell a stale
    snapshot from a corrupted one.
    """


class SnapshotMismatchError(StoreError):
    """A structurally valid snapshot does not describe the given graph.

    The snapshot's graph fingerprint (vertex/edge counts, graph version,
    degree-sequence and label-histogram checksums) disagrees with the live
    graph, so attaching it would serve answers for a different graph.
    Callers that can rebuild (``SnapshotStore.attach_or_build``) catch this
    and fall back to a fresh build + persist.
    """


class GraphNotFoundError(ReproError, KeyError):
    """Raised when a serving directory is asked for a graph it does not host."""

    def __init__(self, name, known=()) -> None:
        message = f"no graph named {name!r} is being served"
        if known:
            message += f"; serving: {sorted(known)}"
        super().__init__(message)
        self.name = name
        self.known = tuple(known)
