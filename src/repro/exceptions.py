"""Exception hierarchy for the BCC reproduction library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without also
catching programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class GraphError(ReproError):
    """Base class for errors related to graph construction or access."""


class VertexNotFoundError(GraphError, KeyError):
    """Raised when an operation references a vertex not present in the graph."""

    def __init__(self, vertex) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge not present in the graph."""

    def __init__(self, u, v) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class LabelError(GraphError):
    """Raised when vertex labels are missing or inconsistent with a query."""


class QueryError(ReproError):
    """Raised when a community-search query is malformed.

    Examples include query vertices that do not exist, query vertices that
    share a label when distinct labels are required, or non-positive
    structural parameters.
    """


class EmptyCommunityError(ReproError):
    """Raised when no community satisfying the requested constraints exists.

    Search routines normally return ``None`` (or an empty result object) for
    "no answer"; this exception is used by strict APIs that are documented to
    raise instead.
    """


class IndexNotBuiltError(ReproError):
    """Raised when an index-based method is invoked before building the index."""


class DatasetError(ReproError):
    """Raised when a synthetic dataset generator receives invalid parameters."""
