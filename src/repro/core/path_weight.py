"""Def. 6: the butterfly-core path weight and its shortest-path search.

The local search (Algorithm 8) seeds its candidate graph with a path between
the two query vertices.  A plain hop-count shortest path may run through
low-coreness, low-butterfly vertices; Def. 6 therefore scores a path ``P``
from ``s`` to ``t`` as::

    weight(P) = hops(P)
              + gamma1 * (delta_max - min_{v in P} delta(v))
              + gamma2 * (chi_max   - min_{v in P} chi(v))

where δ(v) is the (label-group) coreness and χ(v) the butterfly degree of
vertex ``v`` — both served in O(1) by the :class:`~repro.core.bc_index.BCIndex`
— and δ_max / χ_max are the corresponding maxima over the graph.  Smaller
shortfalls give smaller weights, so the search prefers paths through
well-connected liaison vertices.

The weight is *not* edge-additive (the two penalty terms depend on the
minimum over the whole path), so Dijkstra on edges does not apply directly.
:func:`butterfly_core_shortest_path` runs an exact label-correcting search
over states ``(vertex, min_coreness_so_far, min_butterfly_so_far)`` with
dominance pruning; the number of distinct (coreness, butterfly) minima per
vertex is small in practice, and a configurable cap bounds the worst case
(when the cap trips, the result degrades gracefully to the best path found).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.bc_index import BCIndex
from repro.graph.labeled_graph import LabeledGraph, Label, Vertex


@dataclass(frozen=True)
class PathWeightConfig:
    """Weights of the coreness and butterfly penalties (paper default 0.5/0.5)."""

    gamma1: float = 0.5
    gamma2: float = 0.5

    def __post_init__(self) -> None:
        if self.gamma1 < 0 or self.gamma2 < 0:
            raise ValueError("gamma1 and gamma2 must be non-negative")


def path_weight(
    path: List[Vertex],
    index: BCIndex,
    left_label: Label,
    right_label: Label,
    config: PathWeightConfig = PathWeightConfig(),
    delta_max: Optional[int] = None,
    chi_max: Optional[int] = None,
) -> float:
    """Return the butterfly-core weight of an explicit path (Def. 6)."""
    if not path:
        return float("inf")
    if delta_max is None:
        delta_max = index.max_coreness()
    if chi_max is None:
        chi_max = index.max_butterfly_degree(left_label, right_label)
    hops = len(path) - 1
    min_core = min(index.coreness(v) for v in path)
    min_chi = min(index.butterfly_degree(v, left_label, right_label) for v in path)
    return (
        hops
        + config.gamma1 * (delta_max - min_core)
        + config.gamma2 * (chi_max - min_chi)
    )


def butterfly_core_shortest_path(
    graph: LabeledGraph,
    source: Vertex,
    target: Vertex,
    index: BCIndex,
    left_label: Label,
    right_label: Label,
    config: PathWeightConfig = PathWeightConfig(),
    max_labels_per_vertex: int = 16,
    max_expansions: int = 50000,
) -> Optional[List[Vertex]]:
    """Return a minimum butterfly-core-weight path from ``source`` to ``target``.

    Parameters
    ----------
    graph:
        The graph to search (typically the full input graph).
    source, target:
        Endpoints; ``None`` is returned when they are disconnected.
    index:
        A built :class:`BCIndex` providing δ(v) and χ(v) lookups.
    left_label, right_label:
        The label pair defining which butterfly degrees to use.
    config:
        Penalty weights γ1 and γ2.
    max_labels_per_vertex:
        Dominance-pruning cap: at most this many non-dominated states are kept
        per vertex.  With the cap exceeded the search stays correct as a
        heuristic (it returns the best completed path) but may no longer be
        exact; the default is ample for the candidate sizes used in the
        evaluation.
    max_expansions:
        Hard cap on the number of heap pops; when reached the search falls
        back to the plain hop-count shortest path so that the caller always
        gets *some* connecting path when one exists.
    """
    from repro.graph.traversal import shortest_path as plain_shortest_path

    if source not in graph or target not in graph:
        return None
    delta_max = index.max_coreness()
    chi_max = index.max_butterfly_degree(left_label, right_label)

    def chi(v: Vertex) -> int:
        return index.butterfly_degree(v, left_label, right_label)

    def weight(hops: int, min_core: int, min_chi: int) -> float:
        return (
            hops
            + config.gamma1 * (delta_max - min_core)
            + config.gamma2 * (chi_max - min_chi)
        )

    counter = itertools.count()
    initial_core = index.coreness(source)
    initial_chi = chi(source)
    heap: List[Tuple[float, int, Vertex, int, int, Tuple[Vertex, ...]]] = [
        (
            weight(0, initial_core, initial_chi),
            next(counter),
            source,
            initial_core,
            initial_chi,
            (source,),
        )
    ]
    # Non-dominated (hops, min_core, min_chi) label sets per vertex.
    labels: Dict[Vertex, List[Tuple[int, int, int]]] = {}
    best_path: Optional[List[Vertex]] = None
    best_weight = float("inf")

    def dominated(vertex: Vertex, hops: int, min_core: int, min_chi: int) -> bool:
        for other_hops, other_core, other_chi in labels.get(vertex, []):
            if (
                other_hops <= hops
                and other_core >= min_core
                and other_chi >= min_chi
            ):
                return True
        return False

    expansions = 0
    while heap:
        expansions += 1
        if expansions > max_expansions:
            # Give up on exactness: return what we have, or the hop-shortest path.
            return best_path if best_path is not None else plain_shortest_path(
                graph, source, target
            )
        current_weight, _, vertex, min_core, min_chi, path = heapq.heappop(heap)
        if current_weight >= best_weight:
            # Weights are monotone along a path, so nothing better remains.
            break
        if vertex == target:
            best_weight = current_weight
            best_path = list(path)
            break
        hops = len(path) - 1
        if dominated(vertex, hops, min_core, min_chi):
            continue
        entry = labels.setdefault(vertex, [])
        if len(entry) >= max_labels_per_vertex:
            continue
        entry.append((hops, min_core, min_chi))
        for neighbor in graph.neighbors(vertex):
            if neighbor in path:
                continue
            new_core = min(min_core, index.coreness(neighbor))
            new_chi = min(min_chi, chi(neighbor))
            new_hops = hops + 1
            if dominated(neighbor, new_hops, new_core, new_chi):
                continue
            new_weight = weight(new_hops, new_core, new_chi)
            if new_weight >= best_weight:
                continue
            heapq.heappush(
                heap,
                (
                    new_weight,
                    next(counter),
                    neighbor,
                    new_core,
                    new_chi,
                    path + (neighbor,),
                ),
            )
    if best_path is not None:
        return best_path
    # The state space was exhausted (or capped) without completing a path;
    # fall back to the plain hop-count shortest path, which is ``None`` only
    # when the endpoints are genuinely disconnected.
    return plain_shortest_path(graph, source, target)
