"""The (k1, k2, b)-Butterfly-Core Community model (Def. 4) and result types.

This module defines:

* :class:`BCCParameters` — the query parameters (k1, k2, b), with the
  automatic "coreness of the query vertices" default of Section 3.5;
* :class:`BCCResult` — the community returned by a search, together with the
  decomposition into left core ``L``, right core ``R`` and cross bipartite
  graph ``B``, the leader pair and bookkeeping statistics;
* :func:`is_bcc` / :func:`validate_bcc` — checking whether a subgraph
  satisfies Def. 4 (two labels, left k1-core, right k2-core, a leader pair
  with butterfly degree at least ``b``);
* :func:`decompose_community` — split a community into its L / B / R parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import QueryError
from repro.graph.bipartite import BipartiteView, extract_bipartite
from repro.graph.labeled_graph import (
    LabeledGraph,
    Label,
    Vertex,
    resolve_group_provider,
)
from repro.graph.traversal import are_connected, diameter


@dataclass(frozen=True)
class BCCParameters:
    """Structural parameters of a (k1, k2, b)-BCC query."""

    k1: int
    k2: int
    b: int = 1

    def __post_init__(self) -> None:
        if self.k1 < 0 or self.k2 < 0:
            raise QueryError("core parameters k1 and k2 must be non-negative")
        if self.b < 0:
            raise QueryError("butterfly parameter b must be non-negative")

    @staticmethod
    def from_query(
        graph: LabeledGraph,
        q_left: Vertex,
        q_right: Vertex,
        k1: Optional[int] = None,
        k2: Optional[int] = None,
        b: int = 1,
        groups=None,
    ) -> "BCCParameters":
        """Resolve (k1, k2, b), defaulting k1/k2 to the query vertices' coreness.

        Section 3.5: "One simple way for parameter setting is to automatically
        set k1 and k2 with the coreness of the two queries q_l and q_r",
        where the coreness is computed within each query vertex's own label
        group (the BCC cores are label-induced subgraphs).

        ``groups`` optionally supplies the label-induced subgraphs (a callable
        from label to subgraph); a prepared engine passes its per-label cache
        so repeated queries stop rebuilding the groups.
        """
        from repro.core.kcore import core_decomposition

        group_of = resolve_group_provider(graph, groups)
        if k1 is None:
            left_group = group_of(graph.label(q_left))
            k1 = core_decomposition(left_group).get(q_left, 0)
        if k2 is None:
            right_group = group_of(graph.label(q_right))
            k2 = core_decomposition(right_group).get(q_right, 0)
        return BCCParameters(k1=k1, k2=k2, b=b)


@dataclass
class BCCResult:
    """A butterfly-core community returned by a search algorithm.

    Attributes
    ----------
    community:
        The community subgraph (left core ∪ cross edges ∪ right core).
    left_vertices, right_vertices:
        The two label groups of the community.
    left_label, right_label:
        Their labels.
    leader_pair:
        ``(v_l, v_r)`` with butterfly degree >= b on each side, when known.
    parameters:
        The (k1, k2, b) parameters the community satisfies.
    query_distance:
        ``dist(H, Q)`` of the returned community (Def. 5), if computed.
    iterations:
        Number of peeling iterations performed by the search.
    statistics:
        Free-form per-run counters (timings, butterfly-counting calls, ...).
    """

    community: LabeledGraph
    left_vertices: Set[Vertex]
    right_vertices: Set[Vertex]
    left_label: Label
    right_label: Label
    parameters: BCCParameters
    leader_pair: Optional[Tuple[Vertex, Vertex]] = None
    query_distance: float = 0.0
    iterations: int = 0
    statistics: Dict[str, float] = field(default_factory=dict)

    @property
    def vertices(self) -> Set[Vertex]:
        """All vertices of the community."""
        return set(self.community.vertices())

    def num_vertices(self) -> int:
        """Number of vertices in the community."""
        return self.community.num_vertices()

    def num_edges(self) -> int:
        """Number of edges in the community."""
        return self.community.num_edges()

    def diameter(self) -> float:
        """Exact diameter of the community (may be expensive on large results)."""
        return diameter(self.community)

    def bipartite(self) -> BipartiteView:
        """The cross-group bipartite graph of the community."""
        return extract_bipartite(self.community, self.left_vertices, self.right_vertices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BCCResult(|V|={self.num_vertices()}, |E|={self.num_edges()}, "
            f"k1={self.parameters.k1}, k2={self.parameters.k2}, b={self.parameters.b})"
        )


def resolve_query_labels(
    graph: LabeledGraph, q_left: Vertex, q_right: Vertex
) -> Tuple[Label, Label]:
    """Return the labels of the two query vertices, validating the query.

    The BCC problem requires two existing query vertices with *different*
    labels (Problem 1).
    """
    graph.require_vertices([q_left, q_right])
    left_label = graph.label(q_left)
    right_label = graph.label(q_right)
    if left_label == right_label:
        raise QueryError(
            f"query vertices must have different labels, both are {left_label!r}"
        )
    return left_label, right_label


def decompose_community(
    community: LabeledGraph, left_label: Label, right_label: Label
) -> Tuple[LabeledGraph, BipartiteView, LabeledGraph]:
    """Split a community into (L, B, R): left core, cross bipartite graph, right core."""
    left_vertices = community.vertices_with_label(left_label)
    right_vertices = community.vertices_with_label(right_label)
    left = community.induced_subgraph(left_vertices)
    right = community.induced_subgraph(right_vertices)
    bipartite = extract_bipartite(community, left_vertices, right_vertices)
    return left, bipartite, right


def _orientation_violations(
    community: LabeledGraph,
    parameters: BCCParameters,
    left_label: Label,
    right_label: Label,
) -> List[str]:
    """Return core/butterfly violations for one (left, right) label orientation."""
    from repro.core.butterfly import max_butterfly_degree_per_side

    violations: List[str] = []
    left, bipartite, right = decompose_community(community, left_label, right_label)
    for vertex in left.vertices():
        if left.degree(vertex) < parameters.k1:
            violations.append(
                f"left ({left_label!r}) vertex {vertex!r} has intra-group degree "
                f"{left.degree(vertex)} < k1={parameters.k1}"
            )
            break
    for vertex in right.vertices():
        if right.degree(vertex) < parameters.k2:
            violations.append(
                f"right ({right_label!r}) vertex {vertex!r} has intra-group degree "
                f"{right.degree(vertex)} < k2={parameters.k2}"
            )
            break
    max_left, max_right = max_butterfly_degree_per_side(bipartite)
    if max_left < parameters.b or max_right < parameters.b:
        violations.append(
            f"no leader pair with butterfly degree >= b={parameters.b} "
            f"(max_l={max_left}, max_r={max_right})"
        )
    return violations


def validate_bcc(
    community: LabeledGraph,
    parameters: BCCParameters,
    query_vertices: Optional[Sequence[Vertex]] = None,
    left_label: Optional[Label] = None,
) -> List[str]:
    """Return a list of violated Def. 4 / Problem 1 conditions (empty if valid).

    Checks, in order: exactly two labels; the left group is a k1-core; the
    right group is a k2-core; a leader pair with butterfly degree >= b exists;
    and — when ``query_vertices`` is given — the community is connected and
    contains the query vertices.

    ``left_label`` fixes which label group the ``k1`` parameter applies to.
    When omitted, the label of the first query vertex is used if query
    vertices are given; otherwise both orientations are tried and the
    community is valid if either satisfies the definition.
    """
    violations: List[str] = []
    labels = sorted(community.labels(), key=str)
    if len(labels) != 2:
        violations.append(f"community must span exactly 2 labels, found {len(labels)}")
        return violations
    if left_label is None and query_vertices:
        first = query_vertices[0]
        if first in community:
            left_label = community.label(first)
    if left_label is not None and left_label in labels:
        right_label = labels[0] if labels[1] == left_label else labels[1]
        violations.extend(
            _orientation_violations(community, parameters, left_label, right_label)
        )
    else:
        forward = _orientation_violations(community, parameters, labels[0], labels[1])
        backward = _orientation_violations(community, parameters, labels[1], labels[0])
        if forward and backward:
            violations.extend(forward if len(forward) <= len(backward) else backward)
    if query_vertices is not None:
        missing = [q for q in query_vertices if q not in community]
        if missing:
            violations.append(f"community does not contain query vertices {missing!r}")
        elif not are_connected(community, query_vertices):
            violations.append("query vertices are not connected within the community")
    return violations


def is_bcc(
    community: LabeledGraph,
    parameters: BCCParameters,
    query_vertices: Optional[Sequence[Vertex]] = None,
) -> bool:
    """Return ``True`` when the community satisfies Def. 4 (and contains the query)."""
    return not validate_bcc(community, parameters, query_vertices)


def swap_left_right(result: BCCResult) -> BCCResult:
    """Return a copy of ``result`` with the left and right groups exchanged."""
    return BCCResult(
        community=result.community,
        left_vertices=set(result.right_vertices),
        right_vertices=set(result.left_vertices),
        left_label=result.right_label,
        right_label=result.left_label,
        parameters=BCCParameters(
            k1=result.parameters.k2, k2=result.parameters.k1, b=result.parameters.b
        ),
        leader_pair=(
            (result.leader_pair[1], result.leader_pair[0])
            if result.leader_pair
            else None
        ),
        query_distance=result.query_distance,
        iterations=result.iterations,
        statistics=dict(result.statistics),
    )
