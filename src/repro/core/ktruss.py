"""k-truss decomposition and maintenance.

The paper's main experimental baseline is CTC, the *closest truss community*
model of Huang et al. [20]: a connected k-truss containing the query vertices
with the largest ``k`` and, among those, small diameter.  A k-truss is a
subgraph in which every edge is contained in at least ``k - 2`` triangles
(within the subgraph).

This module provides the truss machinery the baseline needs:

* :func:`edge_support` — number of triangles containing each edge;
* :func:`truss_decomposition` — trussness of every edge (peeling algorithm);
* :func:`k_truss_vertices` / :func:`k_truss` — maximal k-truss extraction;
* :func:`maintain_k_truss` — cascade removal after vertex deletions;
* :func:`max_truss_value_containing` — the largest ``k`` such that a
  connected k-truss contains all query vertices.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set, Tuple

from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import connected_component

EdgeKey = FrozenSet[Vertex]


def _edge_key(u: Vertex, v: Vertex) -> EdgeKey:
    return frozenset((u, v))


def edge_support(graph: LabeledGraph) -> Dict[EdgeKey, int]:
    """Return the number of triangles containing each edge of ``graph``."""
    support: Dict[EdgeKey, int] = {}
    for u, v in graph.edges():
        nu = graph.neighbors(u)
        nv = graph.neighbors(v)
        smaller, larger = (nu, nv) if len(nu) <= len(nv) else (nv, nu)
        count = sum(1 for w in smaller if w in larger)
        support[_edge_key(u, v)] = count
    return support


def truss_decomposition(graph: LabeledGraph) -> Dict[EdgeKey, int]:
    """Return the trussness of every edge.

    The trussness of an edge is the largest ``k`` such that the edge belongs
    to a k-truss.  Implemented with the standard support-peeling algorithm:
    repeatedly remove the edge with the smallest support, assigning it the
    trussness ``support + 2``.
    """
    work = graph.copy()
    support = edge_support(work)
    trussness: Dict[EdgeKey, int] = {}
    # Bucket edges by support for near-linear peeling.
    max_support = max(support.values()) if support else 0
    buckets: Dict[int, Set[EdgeKey]] = {s: set() for s in range(max_support + 1)}
    for edge, s in support.items():
        buckets[s].add(edge)
    k = 2
    remaining = len(support)
    level = 0
    while remaining > 0:
        while level <= max_support and not buckets.get(level):
            level += 1
        if level > max_support:
            break
        edge = buckets[level].pop()
        if edge not in support:
            continue
        s = support[edge]
        k = max(k, s + 2)
        trussness[edge] = k
        u, v = tuple(edge)
        # Removing (u, v) lowers the support of every edge in a triangle
        # with it.
        nu = work.neighbors(u)
        nv = work.neighbors(v)
        smaller_vertex, larger_vertex = (u, v) if len(nu) <= len(nv) else (v, u)
        for w in list(work.neighbors(smaller_vertex)):
            if w in work.neighbors(larger_vertex):
                for other in (u, v):
                    neighbor_edge = _edge_key(other, w)
                    if neighbor_edge in support and neighbor_edge != edge:
                        old = support[neighbor_edge]
                        new = max(old - 1, s)
                        if new != old:
                            support[neighbor_edge] = new
                            buckets[old].discard(neighbor_edge)
                            buckets.setdefault(new, set()).add(neighbor_edge)
        del support[edge]
        work.remove_edge(u, v)
        remaining -= 1
        # Restart the scan from the new minimum possible level.
        level = min(level, s)
    return trussness


def k_truss_edges(graph: LabeledGraph, k: int) -> Set[EdgeKey]:
    """Return the edges of the maximal k-truss of ``graph``."""
    if k <= 2:
        return {_edge_key(u, v) for u, v in graph.edges()}
    work = graph.copy()
    support = edge_support(work)
    threshold = k - 2
    queue = deque(edge for edge, s in support.items() if s < threshold)
    removed: Set[EdgeKey] = set()
    while queue:
        edge = queue.popleft()
        if edge in removed or edge not in support:
            continue
        u, v = tuple(edge)
        if not work.has_edge(u, v):
            continue
        # Decrement support of edges sharing a triangle with (u, v).
        common = [w for w in work.neighbors(u) if w in work.neighbors(v)]
        work.remove_edge(u, v)
        removed.add(edge)
        del support[edge]
        for w in common:
            for other in (u, v):
                neighbor_edge = _edge_key(other, w)
                if neighbor_edge in support:
                    support[neighbor_edge] -= 1
                    if support[neighbor_edge] < threshold:
                        queue.append(neighbor_edge)
    return set(support.keys())


def k_truss_vertices(graph: LabeledGraph, k: int) -> Set[Vertex]:
    """Return the vertices incident to at least one edge of the maximal k-truss."""
    edges = k_truss_edges(graph, k)
    vertices: Set[Vertex] = set()
    for edge in edges:
        vertices.update(edge)
    return vertices


def k_truss(graph: LabeledGraph, k: int) -> LabeledGraph:
    """Return the maximal k-truss of ``graph`` as a new labeled graph.

    The returned graph contains only edges whose support within the truss is
    at least ``k - 2`` (isolated vertices are dropped).
    """
    edges = k_truss_edges(graph, k)
    result = LabeledGraph()
    for edge in edges:
        u, v = tuple(edge)
        result.add_vertex(u, label=graph.label(u))
        result.add_vertex(v, label=graph.label(v))
        result.add_edge(u, v)
    return result


def k_truss_containing(
    graph: LabeledGraph, k: int, query_vertices: Sequence[Vertex]
) -> Optional[LabeledGraph]:
    """Return the connected k-truss containing every query vertex, or ``None``."""
    truss = k_truss(graph, k)
    for q in query_vertices:
        if q not in truss:
            return None
    component = connected_component(truss, query_vertices[0])
    if not all(q in component for q in query_vertices):
        return None
    return truss.induced_subgraph(component)


def max_truss_value_containing(
    graph: LabeledGraph, query_vertices: Sequence[Vertex]
) -> int:
    """Return the largest ``k`` with a connected k-truss containing all queries.

    Returns 2 when the query vertices are connected but share no triangle-rich
    structure, and 0 when they are disconnected (no common truss at all).
    """
    for q in query_vertices:
        if q not in graph:
            return 0
    low, high = 2, max(3, graph.max_degree() + 2)
    best = 0
    # The k-truss family is nested in k, so binary search is valid.
    while low <= high:
        mid = (low + high) // 2
        if k_truss_containing(graph, mid, query_vertices) is not None:
            best = mid
            low = mid + 1
        else:
            high = mid - 1
    return best


def maintain_k_truss(
    graph: LabeledGraph, k: int, removed: Iterable[Vertex]
) -> Set[Vertex]:
    """Delete ``removed`` vertices in place and restore the k-truss property.

    After the deletions, edges supported by fewer than ``k - 2`` triangles are
    cascade-removed, and vertices left with no incident edge are dropped.
    Returns the set of vertices removed (explicit plus cascaded).
    """
    deleted: Set[Vertex] = set()
    for vertex in list(removed):
        if vertex in graph:
            graph.remove_vertex(vertex)
            deleted.add(vertex)
    surviving_edges = k_truss_edges(graph, k)
    keep_vertices: Set[Vertex] = set()
    for edge in surviving_edges:
        keep_vertices.update(edge)
    for vertex in list(graph.vertices()):
        if vertex not in keep_vertices:
            graph.remove_vertex(vertex)
            deleted.add(vertex)
    # Remove edges not in the truss (their endpoints may both survive).
    surviving = {tuple(sorted(edge, key=str)) for edge in surviving_edges}
    for u, v in list(graph.edges()):
        if tuple(sorted((u, v), key=str)) not in surviving:
            graph.remove_edge(u, v)
    return deleted


def is_k_truss(graph: LabeledGraph, k: int) -> bool:
    """Return ``True`` if every edge of ``graph`` lies in >= k - 2 triangles."""
    if k <= 2:
        return True
    for u, v in graph.edges():
        nu = graph.neighbors(u)
        nv = graph.neighbors(v)
        smaller, larger = (nu, nv) if len(nu) <= len(nv) else (nv, nu)
        if sum(1 for w in smaller if w in larger) < k - 2:
            return False
    return True
