"""Algorithm 2: find the maximal connected (k1, k2, b)-BCC ``G0`` containing Q.

Given the query vertices ``Q = {q_l, q_r}`` with different labels and
parameters ``{k1, k2, b}``, the algorithm:

1. selects the two label groups ``V_L`` and ``V_R`` (vertices sharing the
   label of ``q_l`` / ``q_r``);
2. extracts the connected k1-core ``L`` containing ``q_l`` from the subgraph
   induced by ``V_L`` and the connected k2-core ``R`` containing ``q_r`` from
   the subgraph induced by ``V_R``;
3. builds the cross-group bipartite graph ``B`` between ``L`` and ``R``;
4. counts butterflies (Algorithm 3) and checks that each side has a vertex
   with butterfly degree at least ``b``;
5. returns ``G0 = L ∪ B ∪ R`` (or ``None`` when no valid BCC exists).

A technical note on connectivity: the paper's Problem 1 additionally requires
``G0`` to be a connected subgraph containing both query vertices.  ``L`` and
``R`` are connected by construction, but they might not be joined by any
cross edge; :func:`find_g0` therefore also verifies that ``q_l`` and ``q_r``
are connected inside ``G0`` and returns ``None`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.bcc_model import BCCParameters, resolve_query_labels
from repro.core.butterfly import butterfly_degrees, max_butterfly_degree_per_side
from repro.core.kcore import k_core_containing
from repro.graph.bipartite import BipartiteView, extract_bipartite
from repro.graph.labeled_graph import (
    LabeledGraph,
    Label,
    Vertex,
    resolve_group_provider,
    union_graphs,
)
from repro.graph.traversal import are_connected


@dataclass
class G0Result:
    """The output of Algorithm 2: the candidate community and its parts.

    Attributes
    ----------
    community:
        ``G0 = L ∪ B ∪ R`` as a single labeled graph.
    left, right:
        The connected k1-core / k2-core subgraphs (intra-group edges only).
    bipartite:
        The cross-group bipartite view between the two cores.
    butterfly_degrees:
        χ(v) for every vertex of ``bipartite`` as counted by Algorithm 3.
    left_label, right_label:
        Labels of the two groups.
    """

    community: LabeledGraph
    left: LabeledGraph
    right: LabeledGraph
    bipartite: BipartiteView
    butterfly_degrees: Dict[Vertex, int]
    left_label: Label
    right_label: Label


def find_g0(
    graph: LabeledGraph,
    q_left: Vertex,
    q_right: Vertex,
    parameters: BCCParameters,
    require_connected_query: bool = True,
    instrumentation=None,
    backend: str = "auto",
    groups=None,
) -> Optional[G0Result]:
    """Run Algorithm 2 and return the maximal candidate BCC, or ``None``.

    Parameters
    ----------
    graph:
        The full labeled graph.
    q_left, q_right:
        Query vertices; must exist and carry different labels.
    parameters:
        The (k1, k2, b) structural parameters.
    require_connected_query:
        When True (default), additionally require ``q_l`` and ``q_r`` to be
        connected within ``G0`` (Problem 1, condition 1).
    instrumentation:
        Optional :class:`repro.eval.instrumentation.SearchInstrumentation`
        used to count butterfly-counting invocations.
    backend:
        Kernel substrate forwarded to the k-core extraction and the
        butterfly counting (``"auto"`` routes large inputs through the CSR
        fast path; results are identical either way).
    groups:
        Optional callable mapping a label to its label-induced subgraph.  A
        prepared :class:`repro.api.BCCEngine` passes its per-label cache so a
        batch of queries builds each group (and its warm CSR snapshot) once.
    """
    left_label, right_label = resolve_query_labels(graph, q_left, q_right)

    # Lines 1-3: label groups and their connected k-cores around the queries.
    group_of = resolve_group_provider(graph, groups)
    left_group = group_of(left_label)
    right_group = group_of(right_label)
    left_core = k_core_containing(left_group, parameters.k1, q_left, backend=backend)
    if left_core is None:
        return None
    right_core = k_core_containing(right_group, parameters.k2, q_right, backend=backend)
    if right_core is None:
        return None

    # Line 4: the cross-group bipartite graph between the two cores.
    left_vertices = set(left_core.vertices())
    right_vertices = set(right_core.vertices())
    bipartite = extract_bipartite(graph, left_vertices, right_vertices)

    # Lines 5-9: butterfly counting and the leader-existence check.
    degrees = butterfly_degrees(bipartite, backend=backend)
    if instrumentation is not None:
        instrumentation.record_butterfly_counting()
    max_left, max_right = max_butterfly_degree_per_side(bipartite, degrees)
    if max_left < parameters.b or max_right < parameters.b:
        return None

    # Line 10: merge the three parts into G0.
    community = union_graphs(left_core, right_core)
    for u, v in bipartite.edges():
        community.add_edge(u, v)

    if require_connected_query and not are_connected(community, [q_left, q_right]):
        return None

    return G0Result(
        community=community,
        left=left_core,
        right=right_core,
        bipartite=bipartite,
        butterfly_degrees=degrees,
        left_label=left_label,
        right_label=right_label,
    )


def maximal_bcc_exists(
    graph: LabeledGraph,
    q_left: Vertex,
    q_right: Vertex,
    parameters: BCCParameters,
) -> bool:
    """Return ``True`` when Algorithm 2 finds a non-empty candidate community."""
    return find_g0(graph, q_left, q_right, parameters) is not None
