"""Algorithm 5: fast (incremental) query-distance computation.

Algorithm 1 needs, at every iteration, the query distance ``dist(v, Q)`` of
every remaining vertex so it can pick the farthest one.  Recomputing a full
BFS from each query vertex per iteration is wasteful: after deleting a vertex
set ``D``, only vertices that were *farther* from ``q`` than the closest
deleted vertex can change distance (and distances can only grow).

:class:`QueryDistanceTracker` maintains, for each query vertex, the distance
map over the current community and updates it after deletions following
Algorithm 5:

1. let ``d_min = min_{v ∈ D} dist(v, q)`` (using the distances *before* the
   deletion);
2. vertices with ``dist <= d_min`` are unaffected (``S_s`` is the frontier at
   exactly ``d_min``);
3. vertices with ``dist > d_min`` (``S_u``) are re-labelled by a BFS seeded
   from the settled region.

Vertices that become unreachable get distance ``inf`` and are therefore
selected for deletion first by the greedy loop.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import INFINITE_DISTANCE, bfs_distances, multi_source_bfs


class QueryDistanceTracker:
    """Maintains per-query BFS distances over a shrinking community graph.

    Parameters
    ----------
    community:
        The community graph; the tracker reads it but never mutates it.  The
        caller must call :meth:`remove_vertices` *after* deleting the vertices
        from the graph (the tracker keeps its own copy of the pre-deletion
        distances, which is what Algorithm 5 needs).
    query_vertices:
        The query vertices ``Q``.
    """

    def __init__(self, community: LabeledGraph, query_vertices: Sequence[Vertex]) -> None:
        self._community = community
        self._queries: List[Vertex] = list(query_vertices)
        self._distances: Dict[Vertex, Dict[Vertex, float]] = {}
        self.full_recomputations = 0
        self.partial_updates = 0
        for q in self._queries:
            self.recompute(q)

    # ------------------------------------------------------------------
    # full recomputation
    # ------------------------------------------------------------------
    def recompute(self, query: Optional[Vertex] = None) -> None:
        """Recompute distances from scratch for one query vertex (or all)."""
        targets = [query] if query is not None else self._queries
        for q in targets:
            self.full_recomputations += 1
            if q not in self._community:
                self._distances[q] = {}
                continue
            reached = bfs_distances(self._community, q)
            dist_map: Dict[Vertex, float] = {
                v: float(reached.get(v, INFINITE_DISTANCE))
                for v in self._community.vertices()
            }
            self._distances[q] = dist_map

    # ------------------------------------------------------------------
    # incremental update (Algorithm 5)
    # ------------------------------------------------------------------
    def remove_vertices(self, deleted: Iterable[Vertex]) -> None:
        """Update distances after ``deleted`` vertices were removed from the graph.

        Must be called once per deletion batch, after the graph mutation.  The
        deleted vertices are dropped from every distance map, and the
        distances of vertices farther than the closest deleted vertex are
        recomputed with a partial BFS.
        """
        deleted_set = {v for v in deleted}
        if not deleted_set:
            return
        for q in self._queries:
            self._update_one_query(q, deleted_set)

    def _update_one_query(self, query: Vertex, deleted: Set[Vertex]) -> None:
        old = self._distances.get(query, {})
        if query in deleted or query not in self._community:
            self._distances[query] = {}
            return
        # d_min: the closest deleted vertex to the query (pre-deletion distances).
        d_min = math.inf
        for v in deleted:
            d = old.get(v, INFINITE_DISTANCE)
            if d < d_min:
                d_min = d
        # Drop the deleted vertices from the map.
        for v in deleted:
            old.pop(v, None)
        if math.isinf(d_min):
            # Every deleted vertex was already unreachable: nothing changes.
            self.partial_updates += 1
            return
        # Partition the surviving vertices into settled (<= d_min) and
        # to-update (> d_min) sets.
        settled_seeds: Dict[Vertex, int] = {}
        to_update: Set[Vertex] = set()
        for v, dist in old.items():
            if dist <= d_min and not math.isinf(dist):
                settled_seeds[v] = int(dist)
            else:
                to_update.add(v)
        if not to_update:
            self.partial_updates += 1
            return
        self.partial_updates += 1
        reached = multi_source_bfs(self._community, settled_seeds, restrict_to=to_update)
        for v in to_update:
            old[v] = float(reached.get(v, INFINITE_DISTANCE))
        # Settled vertices keep their distances; ensure any vertex not present
        # (e.g. vertices added externally — not expected) defaults to inf.
        for v in self._community.vertices():
            if v not in old:
                old[v] = INFINITE_DISTANCE
        self._distances[query] = old

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distance(self, vertex: Vertex, query: Vertex) -> float:
        """Return ``dist(vertex, query)`` in the current community (inf if unknown)."""
        return self._distances.get(query, {}).get(vertex, INFINITE_DISTANCE)

    def query_distance(self, vertex: Vertex) -> float:
        """Return ``dist(vertex, Q) = max_q dist(vertex, q)`` (Def. 5)."""
        worst = 0.0
        for q in self._queries:
            d = self.distance(vertex, q)
            if math.isinf(d):
                return INFINITE_DISTANCE
            worst = max(worst, d)
        return worst

    def graph_query_distance(self) -> float:
        """Return ``dist(G, Q)``: the maximum query distance over all vertices."""
        worst = 0.0
        for v in self._community.vertices():
            d = self.query_distance(v)
            if math.isinf(d):
                return INFINITE_DISTANCE
            worst = max(worst, d)
        return worst

    def farthest_vertices(self) -> Tuple[List[Vertex], float]:
        """Return the non-query vertices with maximum query distance, and that distance."""
        query_set = set(self._queries)
        best_distance = -1.0
        best: List[Vertex] = []
        for v in self._community.vertices():
            if v in query_set:
                continue
            d = self.query_distance(v)
            if d > best_distance:
                best_distance = d
                best = [v]
            elif d == best_distance:
                best.append(v)
        return best, best_distance

    def distance_map(self, query: Vertex) -> Dict[Vertex, float]:
        """Return a copy of the distance map for one query vertex."""
        return dict(self._distances.get(query, {}))
