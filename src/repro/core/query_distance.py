"""Algorithm 5: fast (incremental) query-distance computation.

Algorithm 1 needs, at every iteration, the query distance ``dist(v, Q)`` of
every remaining vertex so it can pick the farthest one.  Recomputing a full
BFS from each query vertex per iteration is wasteful: after deleting a vertex
set ``D``, only vertices that were *farther* from ``q`` than the closest
deleted vertex can change distance (and distances can only grow).

:class:`QueryDistanceTracker` maintains, for each query vertex, the distance
map over the current community and updates it after deletions following
Algorithm 5:

1. let ``d_min = min_{v ∈ D} dist(v, q)`` (using the distances *before* the
   deletion);
2. vertices with ``dist <= d_min`` are unaffected (``S_s`` is the frontier at
   exactly ``d_min``);
3. vertices with ``dist > d_min`` (``S_u``) are re-labelled by a BFS seeded
   from the settled region.

Vertices that become unreachable get distance ``inf`` and are therefore
selected for deletion first by the greedy loop.

The tracker supports two substrates (``backend="auto" | "object" | "csr"``).
The CSR backend freezes the community once (:mod:`repro.graph.csr`) and
maintains flat per-id distance lists plus a dead-id set; this is valid
because the search loops only ever *delete* vertices, and the caller reports
every deletion batch through :meth:`QueryDistanceTracker.remove_vertices`.
Both backends return identical distances; ``auto`` picks CSR once the
community is large enough to amortize the freeze.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.csr import csr_bfs_distances, csr_multi_source_bfs
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import INFINITE_DISTANCE, bfs_distances, multi_source_bfs

#: Community edge count above which ``backend="auto"`` freezes a CSR
#: snapshot; the tracker runs many sweeps per search, so the threshold is
#: lower than for one-shot kernels.
CSR_TRACKER_MIN_EDGES = 256


class QueryDistanceTracker:
    """Maintains per-query BFS distances over a shrinking community graph.

    Parameters
    ----------
    community:
        The community graph; the tracker reads it but never mutates it.  The
        caller must call :meth:`remove_vertices` *after* deleting the vertices
        from the graph (the tracker keeps its own copy of the pre-deletion
        distances, which is what Algorithm 5 needs).  Deletion is the only
        supported mutation while a tracker is attached.
    query_vertices:
        The query vertices ``Q``.
    backend:
        Distance-sweep substrate; see the module docstring.
    """

    def __init__(
        self,
        community: LabeledGraph,
        query_vertices: Sequence[Vertex],
        backend: str = "auto",
    ) -> None:
        self._community = community
        self._queries: List[Vertex] = list(query_vertices)
        self.full_recomputations = 0
        self.partial_updates = 0
        if backend == "auto":
            backend = (
                "csr" if community.num_edges() >= CSR_TRACKER_MIN_EDGES else "object"
            )
        elif backend not in ("csr", "object"):
            raise ValueError(f"unknown backend {backend!r}")
        self._backend = backend
        if backend == "csr":
            self._frozen = community.freeze()
            self._dead: Set[int] = set()
            self._query_ids: Dict[Vertex, Optional[int]] = {
                q: self._frozen.try_id_of(q) for q in self._queries
            }
            # Per-query distance list indexed by id; UNREACHED encodes inf,
            # None encodes "query vertex gone" (the empty map of the object
            # backend).
            self._id_dist: Dict[Vertex, Optional[List[int]]] = {}
        else:
            self._distances: Dict[Vertex, Dict[Vertex, float]] = {}
        for q in self._queries:
            self.recompute(q)

    # ------------------------------------------------------------------
    # full recomputation
    # ------------------------------------------------------------------
    def recompute(self, query: Optional[Vertex] = None) -> None:
        """Recompute distances from scratch for one query vertex (or all)."""
        targets = [query] if query is not None else self._queries
        if self._backend == "csr":
            for q in targets:
                self.full_recomputations += 1
                qid = self._query_ids.get(q)
                if qid is None or qid in self._dead:
                    self._id_dist[q] = None
                    continue
                self._id_dist[q] = csr_bfs_distances(self._frozen, qid, dead=self._dead)
            return
        for q in targets:
            self.full_recomputations += 1
            if q not in self._community:
                self._distances[q] = {}
                continue
            reached = bfs_distances(self._community, q)
            dist_map: Dict[Vertex, float] = {
                v: float(reached.get(v, INFINITE_DISTANCE))
                for v in self._community.vertices()
            }
            self._distances[q] = dist_map

    # ------------------------------------------------------------------
    # incremental update (Algorithm 5)
    # ------------------------------------------------------------------
    def remove_vertices(self, deleted: Iterable[Vertex]) -> None:
        """Update distances after ``deleted`` vertices were removed from the graph.

        Must be called once per deletion batch, after the graph mutation.  The
        deleted vertices are dropped from every distance map, and the
        distances of vertices farther than the closest deleted vertex are
        recomputed with a partial BFS.
        """
        deleted_set = {v for v in deleted}
        if not deleted_set:
            return
        if self._backend == "csr":
            deleted_ids = set()
            for v in deleted_set:
                vid = self._frozen.try_id_of(v)
                if vid is not None and vid not in self._dead:
                    deleted_ids.add(vid)
            # d_min is taken from the stored pre-deletion distances, so the
            # dead set can be extended before the per-query updates.
            self._dead |= deleted_ids
            for q in self._queries:
                self._update_one_query_csr(q, deleted_ids)
            return
        for q in self._queries:
            self._update_one_query(q, deleted_set)

    def _update_one_query(self, query: Vertex, deleted: Set[Vertex]) -> None:
        old = self._distances.get(query, {})
        if query in deleted or query not in self._community:
            self._distances[query] = {}
            return
        # d_min: the closest deleted vertex to the query (pre-deletion distances).
        d_min = math.inf
        for v in deleted:
            d = old.get(v, INFINITE_DISTANCE)
            if d < d_min:
                d_min = d
        # Drop the deleted vertices from the map.
        for v in deleted:
            old.pop(v, None)
        if math.isinf(d_min):
            # Every deleted vertex was already unreachable: nothing changes.
            self.partial_updates += 1
            return
        # Partition the surviving vertices into settled (<= d_min) and
        # to-update (> d_min) sets.
        settled_seeds: Dict[Vertex, int] = {}
        to_update: Set[Vertex] = set()
        for v, dist in old.items():
            if dist <= d_min and not math.isinf(dist):
                settled_seeds[v] = int(dist)
            else:
                to_update.add(v)
        if not to_update:
            self.partial_updates += 1
            return
        self.partial_updates += 1
        reached = multi_source_bfs(self._community, settled_seeds, restrict_to=to_update)
        for v in to_update:
            old[v] = float(reached.get(v, INFINITE_DISTANCE))
        # Settled vertices keep their distances; ensure any vertex not present
        # (e.g. vertices added externally — not expected) defaults to inf.
        for v in self._community.vertices():
            if v not in old:
                old[v] = INFINITE_DISTANCE
        self._distances[query] = old

    def _update_one_query_csr(self, query: Vertex, deleted_ids: Set[int]) -> None:
        """Flat-array mirror of :meth:`_update_one_query` (Algorithm 5)."""
        qid = self._query_ids.get(query)
        old = self._id_dist.get(query)
        if qid is None or qid in self._dead or old is None:
            self._id_dist[query] = None
            return
        d_min = math.inf
        for vid in deleted_ids:
            d = old[vid]
            if 0 <= d < d_min:
                d_min = d
        if math.isinf(d_min):
            self.partial_updates += 1
            return
        settled_seeds: List[Tuple[int, int]] = []
        to_update: Set[int] = set()
        dead = self._dead
        for vid, dist in enumerate(old):
            if vid in dead:
                continue
            if 0 <= dist <= d_min:
                settled_seeds.append((vid, dist))
            else:
                to_update.add(vid)
        if not to_update:
            self.partial_updates += 1
            return
        self.partial_updates += 1
        reached = csr_multi_source_bfs(
            self._frozen, settled_seeds, dead=dead, restrict_to=to_update
        )
        for vid in to_update:
            old[vid] = reached[vid]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distance(self, vertex: Vertex, query: Vertex) -> float:
        """Return ``dist(vertex, query)`` in the current community (inf if unknown)."""
        if self._backend == "csr":
            dist_list = self._id_dist.get(query)
            if dist_list is None:
                return INFINITE_DISTANCE
            vid = self._frozen.try_id_of(vertex)
            if vid is None or vid in self._dead:
                return INFINITE_DISTANCE
            d = dist_list[vid]
            return float(d) if d >= 0 else INFINITE_DISTANCE
        return self._distances.get(query, {}).get(vertex, INFINITE_DISTANCE)

    def query_distance(self, vertex: Vertex) -> float:
        """Return ``dist(vertex, Q) = max_q dist(vertex, q)`` (Def. 5)."""
        worst = 0.0
        for q in self._queries:
            d = self.distance(vertex, q)
            if math.isinf(d):
                return INFINITE_DISTANCE
            worst = max(worst, d)
        return worst

    def _iter_id_query_distances(self):
        """Yield ``(vid, dist(v, Q))`` over surviving ids (CSR backend)."""
        dist_lists = [self._id_dist.get(q) for q in self._queries]
        dead = self._dead
        for vid in range(self._frozen.num_vertices()):
            if vid in dead:
                continue
            worst = 0.0
            for dist_list in dist_lists:
                if dist_list is None:
                    worst = INFINITE_DISTANCE
                    break
                d = dist_list[vid]
                if d < 0:
                    worst = INFINITE_DISTANCE
                    break
                if d > worst:
                    worst = d
            yield vid, worst

    def graph_query_distance(self) -> float:
        """Return ``dist(G, Q)``: the maximum query distance over all vertices."""
        worst = 0.0
        if self._backend == "csr":
            for _, value in self._iter_id_query_distances():
                if math.isinf(value):
                    return INFINITE_DISTANCE
                if value > worst:
                    worst = value
            return worst
        for v in self._community.vertices():
            d = self.query_distance(v)
            if math.isinf(d):
                return INFINITE_DISTANCE
            worst = max(worst, d)
        return worst

    def farthest_vertices(self) -> Tuple[List[Vertex], float]:
        """Return the non-query vertices with maximum query distance, and that distance."""
        best_distance = -1.0
        best: List[Vertex] = []
        if self._backend == "csr":
            query_ids = {
                vid for vid in self._query_ids.values() if vid is not None
            }
            vertex_of = self._frozen.vertex_of
            best_ids: List[int] = []
            for vid, value in self._iter_id_query_distances():
                if vid in query_ids:
                    continue
                if value > best_distance:
                    best_distance = value
                    best_ids = [vid]
                elif value == best_distance:
                    best_ids.append(vid)
            return [vertex_of(vid) for vid in best_ids], best_distance
        query_set = set(self._queries)
        for v in self._community.vertices():
            if v in query_set:
                continue
            d = self.query_distance(v)
            if d > best_distance:
                best_distance = d
                best = [v]
            elif d == best_distance:
                best.append(v)
        return best, best_distance

    def distance_map(self, query: Vertex) -> Dict[Vertex, float]:
        """Return a copy of the distance map for one query vertex."""
        if self._backend == "csr":
            dist_list = self._id_dist.get(query)
            if dist_list is None:
                return {}
            vertex_of = self._frozen.vertex_of
            return {
                vertex_of(vid): (float(d) if d >= 0 else INFINITE_DISTANCE)
                for vid, d in enumerate(dist_list)
                if vid not in self._dead
            }
        return dict(self._distances.get(query, {}))
