"""LP-BCC: Online-BCC accelerated with the paper's fast strategies.

LP-BCC is the Online-BCC greedy framework (Algorithm 1) equipped with:

* **fast query-distance computation** (Algorithm 5) — after each deletion
  batch only the affected distances are recomputed
  (:class:`~repro.core.query_distance.QueryDistanceTracker`);
* **leader-pair identification and maintenance** (Algorithms 6 and 7) — the
  butterfly constraint is certified through a tracked leader pair whose
  degrees are updated locally per deletion, and the full butterfly counting
  of Algorithm 3 is re-run only when a tracked leader is lost
  (:class:`~repro.core.leader_pair.LeaderPairTracker`);
* **bulk deletion** — all vertices at the maximum query distance are removed
  per iteration (the setting used throughout Section 8).

The returned community is identical in spirit to Online-BCC (same greedy
framework and same candidate selection rule); the accelerations only change
how the intermediate quantities are computed.
"""

from __future__ import annotations

import math
from typing import Optional, Set

from repro.core.bcc_model import BCCParameters, BCCResult, resolve_query_labels
from repro.core.find_g0 import find_g0
from repro.core.leader_pair import LeaderPairTracker, identify_leader_pair
from repro.core.maintenance import maintain_bcc
from repro.core.query_distance import QueryDistanceTracker
from repro.eval.instrumentation import SearchInstrumentation
from repro.exceptions import (
    REASON_NO_CANDIDATE,
    REASON_NO_COMMUNITY,
    REASON_NO_LEADER_PAIR,
    EmptyCommunityError,
)
from repro.graph.labeled_graph import LabeledGraph, Vertex

#: Default leader search radius of Algorithm 6 (shared with SearchConfig).
DEFAULT_RHO = 2


def lp_bcc_search(
    graph: LabeledGraph,
    q_left: Vertex,
    q_right: Vertex,
    k1: Optional[int] = None,
    k2: Optional[int] = None,
    b: int = 1,
    bulk_deletion: bool = True,
    rho: int = DEFAULT_RHO,
    max_iterations: Optional[int] = None,
    instrumentation: Optional[SearchInstrumentation] = None,
) -> Optional[BCCResult]:
    """Run the LP-BCC search (Algorithm 1 + Algorithms 5, 6 and 7).

    Parameters match :func:`repro.core.online_bcc.online_bcc_search`; ``rho``
    is the leader search radius of Algorithm 6.  This legacy one-shot entry
    point delegates to a throwaway :class:`repro.api.BCCEngine`.
    """
    from repro.api import SearchConfig, one_shot_search

    config = SearchConfig(
        k1=k1,
        k2=k2,
        b=b,
        bulk_deletion=bulk_deletion,
        rho=rho,
        max_iterations=max_iterations,
    )
    return one_shot_search(
        "lp-bcc", graph, (q_left, q_right), config, instrumentation
    )


def run_lp_bcc(
    graph: LabeledGraph,
    q_left: Vertex,
    q_right: Vertex,
    k1: Optional[int] = None,
    k2: Optional[int] = None,
    b: int = 1,
    bulk_deletion: bool = True,
    rho: int = DEFAULT_RHO,
    max_iterations: Optional[int] = None,
    instrumentation: Optional[SearchInstrumentation] = None,
    backend: str = "auto",
    groups=None,
) -> BCCResult:
    """LP-BCC implementation registered as method ``"lp-bcc"``.

    Raises :class:`EmptyCommunityError` with a machine-readable ``reason``
    instead of returning ``None``; ``groups`` optionally supplies cached
    label-induced subgraphs from a prepared engine.
    """
    inst = instrumentation if instrumentation is not None else SearchInstrumentation()
    left_label, right_label = resolve_query_labels(graph, q_left, q_right)
    parameters = BCCParameters.from_query(
        graph, q_left, q_right, k1=k1, k2=k2, b=b, groups=groups
    )

    g0 = find_g0(
        graph,
        q_left,
        q_right,
        parameters,
        instrumentation=inst,
        backend=backend,
        groups=groups,
    )
    if g0 is None:
        raise EmptyCommunityError(
            f"no maximal ({parameters.k1}, {parameters.k2}, {parameters.b})-BCC "
            f"candidate contains the query pair",
            reason=REASON_NO_CANDIDATE,
        )

    community = g0.community.copy()
    original = g0.community
    query = [q_left, q_right]

    # Leader pair: identified once on G0 (Algorithm 6), then maintained
    # incrementally (Algorithm 7) by the tracker.
    left_leader, right_leader = identify_leader_pair(
        g0.left,
        g0.right,
        q_left,
        q_right,
        g0.butterfly_degrees,
        parameters.b,
        rho=rho,
    )
    leader_tracker = LeaderPairTracker(
        g0.bipartite.copy(),
        g0.butterfly_degrees,
        q_left,
        q_right,
        parameters.b,
        rho=rho,
        instrumentation=inst,
    )
    leader_tracker.set_leaders(left_leader, right_leader)
    if not leader_tracker.revalidate():
        raise EmptyCommunityError(
            f"no leader pair with butterfly degree >= {parameters.b} exists in G0",
            reason=REASON_NO_LEADER_PAIR,
        )

    with inst.time_query_distance():
        distance_tracker = QueryDistanceTracker(community, query)

    best_vertices: Optional[Set[Vertex]] = None
    best_distance = math.inf
    best_leader_pair = leader_tracker.leader_pair()
    iterations = 0

    while True:
        with inst.time_query_distance():
            current_distance = distance_tracker.graph_query_distance()
        if current_distance < best_distance:
            best_distance = current_distance
            best_vertices = set(community.vertices())
            best_leader_pair = leader_tracker.leader_pair()
        with inst.time_query_distance():
            candidates, max_distance = distance_tracker.farthest_vertices()
        if not candidates or max_distance <= 0:
            break
        if max_iterations is not None and iterations >= max_iterations:
            break
        to_delete = candidates if bulk_deletion else [candidates[0]]

        outcome = maintain_bcc(
            community,
            to_delete,
            parameters,
            left_label,
            right_label,
            query_vertices=query,
            check_butterfly=False,
            instrumentation=inst,
        )
        iterations += 1
        inst.record_iteration(deleted=len(outcome.removed))
        if not outcome.valid:
            break

        # Keep the auxiliary structures consistent with the shrunken graph.
        leader_tracker.remove_vertices(outcome.removed)
        with inst.time_query_distance():
            distance_tracker.remove_vertices(outcome.removed)
        if not leader_tracker.revalidate():
            break

    if best_vertices is None:
        raise EmptyCommunityError(reason=REASON_NO_COMMUNITY)

    final_community = original.induced_subgraph(best_vertices)
    inst.add("leader_full_recounts", float(leader_tracker.full_recounts))
    inst.add("distance_partial_updates", float(distance_tracker.partial_updates))
    inst.add("distance_full_recomputations", float(distance_tracker.full_recomputations))
    return BCCResult(
        community=final_community,
        left_vertices=final_community.vertices_with_label(left_label),
        right_vertices=final_community.vertices_with_label(right_label),
        left_label=left_label,
        right_label=right_label,
        parameters=parameters,
        leader_pair=best_leader_pair,
        query_distance=best_distance,
        iterations=iterations,
        statistics=inst.as_dict(),
    )
