"""k-core decomposition, extraction and maintenance.

The BCC model requires each labeled group of the community to be a k-core
(Def. 1 and Def. 4, conditions 2-3).  This module provides:

* :func:`core_decomposition` — the Batagelj–Zaversnik bucket algorithm [3]
  computing the coreness of every vertex in ``O(|E|)`` time;
* :func:`k_core` / :func:`k_core_containing` — peeling-based extraction of the
  maximal subgraph of minimum degree ``k`` (optionally the connected
  component containing a query vertex);
* :func:`maintain_k_core` — incremental maintenance after vertex deletions:
  cascade-remove vertices whose degree fell below ``k`` (Algorithm 4,
  lines 2-3);
* :func:`max_core_value_containing` — the largest ``k`` such that a connected
  k-core contains a given vertex (used for the automatic parameter setting
  described in Section 3.5).
"""

from __future__ import annotations

from collections import deque
from itertools import compress
from typing import Dict, Iterable, List, Optional, Set

from repro.exceptions import VertexNotFoundError
from repro.graph.csr import csr_k_core_alive
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import connected_component

#: Edge count above which ``backend="auto"`` prefers the CSR fast path for a
#: full core decomposition (below it the freeze overhead dominates).
CSR_CORE_MIN_EDGES = 2048

#: Edge count above which ``backend="auto"`` freezes for a single k-core
#: peel even without a warm snapshot.
CSR_PEEL_MIN_EDGES = 8192


def _resolve_backend(graph: LabeledGraph, backend: str, min_edges: int) -> str:
    """Map ``auto`` to ``csr``/``object`` by snapshot warmth and graph size.

    ``"process"`` is the batch-transport backend (:mod:`repro.parallel`);
    inside one process its kernels are exactly the CSR kernels.
    """
    if backend != "auto":
        if backend == "process":
            return "csr"
        if backend not in ("csr", "object"):
            raise ValueError(f"unknown backend {backend!r}")
        return backend
    if graph.has_frozen() or graph.num_edges() >= min_edges:
        return "csr"
    return "object"


def core_decomposition(graph: LabeledGraph, backend: str = "auto") -> Dict[Vertex, int]:
    """Return the coreness of every vertex (Batagelj–Zaversnik).

    The coreness δ(v) is the largest ``k`` such that ``v`` belongs to a
    k-core of the graph.  Runs in time linear in the number of edges using
    bucket sorting by degree.  ``backend`` selects the adjacency substrate
    (``"auto"``, ``"object"``, ``"csr"``); every backend returns identical
    values — the CSR path peels flat integer arrays and serves repeated
    calls on an unmutated graph from the snapshot's coreness cache.
    """
    if _resolve_backend(graph, backend, CSR_CORE_MIN_EDGES) == "csr":
        frozen = graph.freeze()
        vertex_of = frozen.vertex_of
        return {vertex_of(i): c for i, c in enumerate(frozen.coreness())}
    degrees: Dict[Vertex, int] = {v: graph.degree(v) for v in graph.vertices()}
    if not degrees:
        return {}
    max_degree = max(degrees.values())
    buckets: List[List[Vertex]] = [[] for _ in range(max_degree + 1)]
    for vertex, degree in degrees.items():
        buckets[degree].append(vertex)
    coreness: Dict[Vertex, int] = {}
    current_degrees = dict(degrees)
    removed: Set[Vertex] = set()
    k = 0
    for d in range(max_degree + 1):
        queue = buckets[d]
        index = 0
        while index < len(queue):
            vertex = queue[index]
            index += 1
            if vertex in removed or current_degrees[vertex] > d:
                # Stale bucket entry: the vertex has been re-bucketed at a
                # lower degree or already peeled.
                continue
            k = max(k, current_degrees[vertex])
            coreness[vertex] = k
            removed.add(vertex)
            for neighbor in graph.neighbors(vertex):
                if neighbor in removed:
                    continue
                if current_degrees[neighbor] > current_degrees[vertex]:
                    current_degrees[neighbor] -= 1
                    new_degree = current_degrees[neighbor]
                    if new_degree <= d:
                        queue.append(neighbor)
                    else:
                        buckets[new_degree].append(neighbor)
    return coreness


def k_core_vertices(graph: LabeledGraph, k: int, backend: str = "auto") -> Set[Vertex]:
    """Return the vertex set of the maximal k-core of ``graph`` (may be empty).

    With the CSR backend the peel runs over flat arrays; when the snapshot's
    coreness cache is warm (e.g. during a k-sweep) extraction degrades to an
    O(|V|) coreness filter.  All backends return the identical (unique)
    maximal k-core.
    """
    if k <= 0:
        return set(graph.vertices())
    if _resolve_backend(graph, backend, CSR_PEEL_MIN_EDGES) == "csr":
        frozen = graph.freeze()
        alive = csr_k_core_alive(frozen, k)
        return set(compress(frozen.interner.vertices(), alive))
    degrees: Dict[Vertex, int] = {v: graph.degree(v) for v in graph.vertices()}
    alive: Set[Vertex] = set(degrees)
    queue = deque(v for v, d in degrees.items() if d < k)
    queued = set(queue)
    while queue:
        vertex = queue.popleft()
        if vertex not in alive:
            continue
        alive.discard(vertex)
        for neighbor in graph.neighbors(vertex):
            if neighbor in alive:
                degrees[neighbor] -= 1
                if degrees[neighbor] < k and neighbor not in queued:
                    queue.append(neighbor)
                    queued.add(neighbor)
    return alive


def k_core(graph: LabeledGraph, k: int, backend: str = "auto") -> LabeledGraph:
    """Return the maximal k-core of ``graph`` as a new labeled graph."""
    return graph.induced_subgraph(k_core_vertices(graph, k, backend=backend))


def k_core_containing(
    graph: LabeledGraph, k: int, vertex: Vertex, backend: str = "auto"
) -> Optional[LabeledGraph]:
    """Return the connected k-core containing ``vertex``, or ``None``.

    This is the "connected component graph L (R) containing the query vertex"
    step of Algorithm 2 (lines 2-3).
    """
    if vertex not in graph:
        raise VertexNotFoundError(vertex)
    survivors = k_core_vertices(graph, k, backend=backend)
    if vertex not in survivors:
        return None
    core = graph.induced_subgraph(survivors)
    component = connected_component(core, vertex)
    return core.induced_subgraph(component)


def maintain_k_core(
    graph: LabeledGraph,
    k: int,
    removed: Iterable[Vertex],
    required: Optional[Iterable[Vertex]] = None,
) -> Set[Vertex]:
    """Delete ``removed`` from ``graph`` in place and restore the k-core property.

    After the explicit deletions, vertices whose degree dropped below ``k``
    are cascade-removed until every remaining vertex has degree >= k.  This is
    the core-maintenance step of Algorithm 4 (lines 2-3).

    Parameters
    ----------
    graph:
        The graph to maintain; it is modified in place.
    k:
        Minimum degree to restore.
    removed:
        Vertices to delete explicitly (those not present are ignored).
    required:
        Optional vertices that must survive; if any of them is cascade-removed
        the function still completes, and the caller can detect the loss by
        membership testing (the BCC search treats that as "no longer a valid
        community").

    Returns
    -------
    set
        Every vertex deleted by this call (explicit plus cascaded).
    """
    deleted: Set[Vertex] = set()
    queue = deque()
    for vertex in removed:
        if vertex in graph:
            deleted.add(vertex)
    for vertex in deleted:
        neighbors = set(graph.neighbors(vertex))
        graph.remove_vertex(vertex)
        for neighbor in neighbors:
            if neighbor in graph and graph.degree(neighbor) < k:
                queue.append(neighbor)
    while queue:
        vertex = queue.popleft()
        if vertex not in graph or graph.degree(vertex) >= k:
            continue
        neighbors = set(graph.neighbors(vertex))
        graph.remove_vertex(vertex)
        deleted.add(vertex)
        for neighbor in neighbors:
            if neighbor in graph and graph.degree(neighbor) < k:
                queue.append(neighbor)
    # ``required`` is accepted for interface clarity; survival is checked by
    # the caller because the correct reaction (abort vs. continue) depends on
    # the search algorithm.
    _ = required
    return deleted


def max_core_value_containing(graph: LabeledGraph, vertex: Vertex) -> int:
    """Return the coreness of ``vertex`` in ``graph``.

    Section 3.5 suggests setting ``k1``/``k2`` automatically to the coreness
    of the query vertices; this helper performs that lookup.
    """
    if vertex not in graph:
        raise VertexNotFoundError(vertex)
    return core_decomposition(graph).get(vertex, 0)


def degeneracy(graph: LabeledGraph, backend: str = "auto") -> int:
    """Return the degeneracy (maximum coreness) of the graph."""
    coreness = core_decomposition(graph, backend=backend)
    return max(coreness.values()) if coreness else 0


def is_k_core(graph: LabeledGraph, k: int) -> bool:
    """Return ``True`` if every vertex of ``graph`` has degree at least ``k``."""
    return all(graph.degree(v) >= k for v in graph.vertices())
