"""Section 7: multi-labeled butterfly-core community (mBCC) search.

The mBCC model (Def. 8) generalises the BCC to ``m >= 2`` labels:

1. the community spans exactly the ``m`` labels of the query vertices;
2. the subgraph induced by each label group is a ``k_i``-core;
3. every pair of labels is *cross-group connected* (Def. 7): connected in the
   "label interaction graph" whose edges are the label pairs that have a
   direct cross-group interaction — i.e. whose bipartite graph contains, on
   each side, a vertex with butterfly degree at least ``b``.

:func:`mbcc_search` implements Algorithm 9: find the maximal candidate
(Algorithm 2 generalised to m groups), then iteratively delete the farthest
vertices (fast query distances, Algorithm 5), maintain every group as a
``k_i``-core, and keep checking cross-group connectivity through per-pair
leader pairs (Algorithms 3/4 optimised by 6/7).  The intermediate graph with
the smallest query distance is returned.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.bcc_model import BCCParameters
from repro.core.butterfly import butterfly_degrees, max_butterfly_degree_per_side
from repro.core.kcore import core_decomposition, k_core_containing
from repro.core.maintenance import maintain_label_core
from repro.core.query_distance import QueryDistanceTracker
from repro.eval.instrumentation import SearchInstrumentation
from repro.exceptions import (
    REASON_NO_CANDIDATE,
    REASON_NO_COMMUNITY,
    EmptyCommunityError,
    QueryError,
)
from repro.graph.bipartite import extract_bipartite
from repro.graph.labeled_graph import (
    LabeledGraph,
    Label,
    Vertex,
    resolve_group_provider,
    union_graphs,
)
from repro.graph.traversal import are_connected


@dataclass
class MBCCResult:
    """A multi-labeled butterfly-core community."""

    community: LabeledGraph
    groups: Dict[Label, Set[Vertex]]
    parameters: Dict[Label, int]
    b: int
    query_distance: float = 0.0
    iterations: int = 0
    interaction_edges: List[Tuple[Label, Label]] = field(default_factory=list)
    statistics: Dict[str, float] = field(default_factory=dict)

    def num_vertices(self) -> int:
        """Number of vertices in the community."""
        return self.community.num_vertices()

    def num_edges(self) -> int:
        """Number of edges in the community."""
        return self.community.num_edges()

    @property
    def vertices(self) -> Set[Vertex]:
        """All community vertices."""
        return set(self.community.vertices())


def _interaction_graph_edges(
    community: LabeledGraph,
    labels: Sequence[Label],
    b: int,
    instrumentation: Optional[SearchInstrumentation] = None,
    backend: str = "auto",
) -> List[Tuple[Label, Label]]:
    """Return the label pairs that currently have a cross-group interaction.

    A pair interacts when the bipartite graph between the two groups has, on
    each side, at least one vertex with butterfly degree >= b (Def. 4,
    condition 4, evaluated per pair).
    """
    edges: List[Tuple[Label, Label]] = []
    group_vertices = {lab: community.vertices_with_label(lab) for lab in labels}
    for left_label, right_label in itertools.combinations(labels, 2):
        left = group_vertices[left_label]
        right = group_vertices[right_label]
        if not left or not right:
            continue
        bipartite = extract_bipartite(community, left, right)
        if bipartite.num_edges() == 0:
            continue
        degrees = butterfly_degrees(bipartite, backend=backend)
        if instrumentation is not None:
            instrumentation.record_butterfly_counting()
        max_left, max_right = max_butterfly_degree_per_side(bipartite, degrees)
        if max_left >= b and max_right >= b:
            edges.append((left_label, right_label))
    return edges


def cross_group_connected(
    labels: Sequence[Label], interaction_edges: Sequence[Tuple[Label, Label]]
) -> bool:
    """Def. 7: every pair of labels is connected in the label interaction graph.

    Implemented with a union-find over the labels, as suggested by the
    complexity analysis of Section 7.
    """
    parent: Dict[Label, Label] = {lab: lab for lab in labels}

    def find(x: Label) -> Label:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b_label in interaction_edges:
        if a in parent and b_label in parent:
            ra, rb = find(a), find(b_label)
            if ra != rb:
                parent[ra] = rb
    roots = {find(lab) for lab in labels}
    return len(roots) <= 1


def validate_mbcc_query(
    graph: LabeledGraph, query_vertices: Sequence[Vertex]
) -> List[Label]:
    """Validate an mBCC query and return its labels (one per vertex).

    Shared by :func:`run_mbcc` and ``BCCEngine.explain`` so both raise
    identical errors: at least two existing vertices, all with distinct
    labels.
    """
    query = list(query_vertices)
    if len(query) < 2:
        raise QueryError("mBCC search needs at least two query vertices")
    graph.require_vertices(query)
    labels = [graph.label(q) for q in query]
    if len(set(labels)) != len(labels):
        raise QueryError("every query vertex must have a distinct label")
    return labels


def resolve_mbcc_parameters(
    graph: LabeledGraph,
    query_vertices: Sequence[Vertex],
    core_parameters: Optional[Sequence[int]],
    groups=None,
    backend: str = "auto",
) -> Dict[Label, int]:
    """Resolve per-label core parameters, defaulting to each query's coreness."""
    group_of = resolve_group_provider(graph, groups)
    resolved: Dict[Label, int] = {}
    for position, q in enumerate(query_vertices):
        label = graph.label(q)
        if core_parameters is not None:
            resolved[label] = core_parameters[position]
        else:
            group = group_of(label)
            resolved[label] = core_decomposition(group, backend=backend).get(q, 0)
    return resolved


def find_mbcc_candidate(
    graph: LabeledGraph,
    query_vertices: Sequence[Vertex],
    core_parameters: Dict[Label, int],
    b: int,
    instrumentation: Optional[SearchInstrumentation] = None,
    groups=None,
    backend: str = "auto",
) -> Optional[LabeledGraph]:
    """Generalised Algorithm 2: the maximal connected mBCC candidate ``G0``.

    Builds, per query label, the connected k_i-core around the query vertex;
    unions them together with all cross edges between admitted groups; and
    checks cross-group connectivity and query connectivity.  ``groups``
    optionally supplies cached label-induced subgraphs.
    """
    group_of = resolve_group_provider(graph, groups)
    cores: List[LabeledGraph] = []
    labels: List[Label] = []
    for q in query_vertices:
        label = graph.label(q)
        labels.append(label)
        group = group_of(label)
        core = k_core_containing(group, core_parameters[label], q, backend=backend)
        if core is None:
            return None
        cores.append(core)
    community = union_graphs(*cores)
    admitted = set(community.vertices())
    # Add every cross edge of the input graph between admitted vertices of
    # different (query) labels.
    for u in admitted:
        for w in graph.neighbors(u):
            if w in admitted and graph.label(u) != graph.label(w):
                community.add_edge(u, w)
    interaction = _interaction_graph_edges(
        community, labels, b, instrumentation, backend=backend
    )
    if not cross_group_connected(labels, interaction):
        return None
    if not are_connected(community, query_vertices):
        return None
    return community


def mbcc_search(
    graph: LabeledGraph,
    query_vertices: Sequence[Vertex],
    core_parameters: Optional[Sequence[int]] = None,
    b: int = 1,
    bulk_deletion: bool = True,
    max_iterations: Optional[int] = None,
    instrumentation: Optional[SearchInstrumentation] = None,
) -> Optional[MBCCResult]:
    """Run the multi-labeled BCC search of Algorithm 9.

    This legacy one-shot entry point delegates to a throwaway
    :class:`repro.api.BCCEngine` (method ``"mbcc"``).

    Parameters
    ----------
    graph:
        The labeled input graph.
    query_vertices:
        ``m`` query vertices, each with a distinct label.
    core_parameters:
        Optional per-query ``k_i`` values (same order as the query vertices);
        defaults to each query vertex's coreness within its label group.
    b:
        Butterfly-degree requirement for every cross-group interaction.
    bulk_deletion:
        Remove all farthest vertices per iteration (True, the paper's
        experimental setting) or a single vertex (False).
    max_iterations:
        Optional cap on peeling iterations.
    instrumentation:
        Optional counters.
    """
    from repro.api import SearchConfig, one_shot_search

    config = SearchConfig(
        b=b,
        bulk_deletion=bulk_deletion,
        max_iterations=max_iterations,
        core_parameters=None if core_parameters is None else tuple(core_parameters),
    )
    return one_shot_search(
        "mbcc", graph, tuple(query_vertices), config, instrumentation
    )


def run_mbcc(
    graph: LabeledGraph,
    query_vertices: Sequence[Vertex],
    core_parameters: Optional[Sequence[int]] = None,
    b: int = 1,
    bulk_deletion: bool = True,
    max_iterations: Optional[int] = None,
    instrumentation: Optional[SearchInstrumentation] = None,
    backend: str = "auto",
    groups=None,
) -> MBCCResult:
    """Algorithm 9 implementation registered as method ``"mbcc"``.

    Parameters match :func:`mbcc_search`; ``backend`` selects the kernel
    substrate for the candidate cores and butterfly counting, and ``groups``
    optionally supplies cached label-induced subgraphs.  Raises
    :class:`EmptyCommunityError` instead of returning ``None``.
    """
    inst = instrumentation if instrumentation is not None else SearchInstrumentation()
    query = list(query_vertices)
    labels = validate_mbcc_query(graph, query)

    resolved = resolve_mbcc_parameters(
        graph, query, core_parameters, groups=groups, backend=backend
    )
    candidate = find_mbcc_candidate(
        graph, query, resolved, b, inst, groups=groups, backend=backend
    )
    if candidate is None:
        raise EmptyCommunityError(
            f"no maximal m-labeled candidate with b={b} contains the query",
            reason=REASON_NO_CANDIDATE,
        )

    community = candidate.copy()
    original = candidate
    tracker = QueryDistanceTracker(community, query)

    best_vertices: Optional[Set[Vertex]] = None
    best_distance = math.inf
    iterations = 0

    while True:
        current_distance = tracker.graph_query_distance()
        if current_distance < best_distance:
            best_distance = current_distance
            best_vertices = set(community.vertices())
        candidates, max_distance = tracker.farthest_vertices()
        if not candidates or max_distance <= 0:
            break
        if max_iterations is not None and iterations >= max_iterations:
            break
        to_delete = candidates if bulk_deletion else [candidates[0]]

        removed: Set[Vertex] = set()
        by_label: Dict[Label, List[Vertex]] = {}
        for v in to_delete:
            if v in community:
                by_label.setdefault(community.label(v), []).append(v)
        for label, vertices in by_label.items():
            removed |= maintain_label_core(
                community, label, resolved.get(label, 0), vertices
            )
        iterations += 1
        inst.record_iteration(deleted=len(removed))

        if any(q not in community for q in query):
            break
        interaction = _interaction_graph_edges(
            community, labels, b, inst, backend=backend
        )
        if not cross_group_connected(labels, interaction):
            break
        if not are_connected(community, query):
            break
        tracker.remove_vertices(removed)

    if best_vertices is None:
        raise EmptyCommunityError(reason=REASON_NO_COMMUNITY)
    final_community = original.induced_subgraph(best_vertices)
    interaction = _interaction_graph_edges(
        final_community, labels, b, backend=backend
    )
    return MBCCResult(
        community=final_community,
        groups={lab: final_community.vertices_with_label(lab) for lab in labels},
        parameters=resolved,
        b=b,
        query_distance=best_distance,
        iterations=iterations,
        interaction_edges=interaction,
        statistics=inst.as_dict(),
    )


def bcc_parameters_from_mbcc(
    resolved: Dict[Label, int], left_label: Label, right_label: Label, b: int
) -> BCCParameters:
    """Helper converting per-label parameters into a two-label BCCParameters."""
    return BCCParameters(
        k1=resolved.get(left_label, 0), k2=resolved.get(right_label, 0), b=b
    )
