"""The offline butterfly-core index (BCindex) of Section 6.3.

The BCindex stores, for every vertex:

* its **label-group coreness** — the coreness of the vertex within the
  subgraph induced by its own label.  The BCC definition only ever uses
  cores taken inside a single label group, so this is the quantity Alg. 8
  needs for its expansion thresholds and for the path weight of Def. 6
  (see DESIGN.md for the discussion of this choice);
* its **butterfly degree** for a given pair of labels — χ(v) over the
  cross-group bipartite graph between the two labels.  Butterfly degrees are
  computed lazily per label pair and cached, because a graph with many labels
  has quadratically many pairs of which a query touches only one.

Both quantities are accessible in O(1) after construction, as the paper
requires for the weighted shortest-path computation.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro.core.butterfly import butterfly_degrees
from repro.core.kcore import core_decomposition
from repro.exceptions import IndexNotBuiltError
from repro.graph.bipartite import extract_label_bipartite
from repro.graph.labeled_graph import (
    LabeledGraph,
    Label,
    Vertex,
    resolve_group_provider,
)


class BCIndex:
    """Offline index of label-group coreness and cross-group butterfly degrees.

    Parameters
    ----------
    graph:
        The labeled graph to index.  The index holds a reference (it does not
        copy the graph); it reflects the graph at construction time and is not
        updated if the graph is later mutated — build indexes on the original
        input graph, which community search never modifies.
    build:
        When True (default) the coreness component is built immediately;
        otherwise call :meth:`build`.
    backend:
        Kernel substrate forwarded to the per-group core decompositions and
        the per-pair butterfly counting (``"auto"`` routes large groups
        through the CSR fast path of :mod:`repro.graph.csr`).
    groups:
        Optional callable mapping a label to its label-induced subgraph; a
        prepared :class:`repro.api.BCCEngine` passes its per-label cache so
        the index build reuses (and warms) the same subgraphs the searches
        consume instead of rebuilding them.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        build: bool = True,
        backend: str = "auto",
        groups=None,
    ) -> None:
        self._graph = graph
        self._backend = backend
        self._groups = groups
        self._coreness: Optional[Dict[Vertex, int]] = None
        self._max_coreness: int = 0
        self._butterfly_cache: Dict[Tuple[str, str], Dict[Vertex, int]] = {}
        self._max_butterfly_cache: Dict[Tuple[str, str], int] = {}
        if build:
            self.build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> None:
        """Build the coreness component of the index (label-group coreness)."""
        group_of = resolve_group_provider(self._graph, self._groups)
        coreness: Dict[Vertex, int] = {}
        for label in self._graph.labels():
            group = group_of(label)
            coreness.update(core_decomposition(group, backend=self._backend))
        # Isolated vertices within their group never appear in the
        # decomposition output of an empty-edge subgraph; default to 0.
        for v in self._graph.vertices():
            coreness.setdefault(v, 0)
        self._coreness = coreness
        self._max_coreness = max(coreness.values()) if coreness else 0

    def is_built(self) -> bool:
        """Return ``True`` once :meth:`build` has run."""
        return self._coreness is not None

    def _require_built(self) -> None:
        if self._coreness is None:
            raise IndexNotBuiltError("call BCIndex.build() before querying the index")

    # ------------------------------------------------------------------
    # coreness component
    # ------------------------------------------------------------------
    def coreness(self, vertex: Vertex) -> int:
        """Return the label-group coreness δ(v) of ``vertex``."""
        self._require_built()
        return self._coreness.get(vertex, 0)  # type: ignore[union-attr]

    def max_coreness(self) -> int:
        """Return δ_max, the maximum label-group coreness over all vertices."""
        self._require_built()
        return self._max_coreness

    def coreness_map(self) -> Dict[Vertex, int]:
        """Return a copy of the full coreness mapping."""
        self._require_built()
        return dict(self._coreness)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # butterfly component (lazy per label pair)
    # ------------------------------------------------------------------
    def _pair_key(self, left_label: Label, right_label: Label) -> Tuple[str, str]:
        a, b = str(left_label), str(right_label)
        return (a, b) if a <= b else (b, a)

    def butterfly_degrees_for(
        self, left_label: Label, right_label: Label
    ) -> Dict[Vertex, int]:
        """Return χ(v) for every vertex across the given label pair (cached)."""
        key = self._pair_key(left_label, right_label)
        if key not in self._butterfly_cache:
            bipartite = extract_label_bipartite(self._graph, left_label, right_label)
            degrees = butterfly_degrees(bipartite, backend=self._backend)
            self._butterfly_cache[key] = degrees
            self._max_butterfly_cache[key] = max(degrees.values()) if degrees else 0
        return self._butterfly_cache[key]

    def butterfly_degree(
        self, vertex: Vertex, left_label: Label, right_label: Label
    ) -> int:
        """Return χ(vertex) across the given label pair (0 if not involved)."""
        return self.butterfly_degrees_for(left_label, right_label).get(vertex, 0)

    def max_butterfly_degree(self, left_label: Label, right_label: Label) -> int:
        """Return χ_max over the bipartite graph of the given label pair."""
        self.butterfly_degrees_for(left_label, right_label)
        return self._max_butterfly_cache[self._pair_key(left_label, right_label)]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def cached_label_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """Return the label pairs whose butterfly degrees have been computed."""
        return tuple(sorted(self._butterfly_cache))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        built = "built" if self.is_built() else "not built"
        return (
            f"BCIndex({built}, |V|={self._graph.num_vertices()}, "
            f"cached_pairs={len(self._butterfly_cache)})"
        )


def build_bc_index(graph: LabeledGraph) -> BCIndex:
    """Convenience constructor mirroring the paper's offline index build step."""
    return BCIndex(graph, build=True)
