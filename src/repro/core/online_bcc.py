"""Algorithm 1: the greedy Online-BCC search (2-approximation).

The search first builds the maximal candidate community ``G0`` containing the
query vertices (Algorithm 2), then repeatedly deletes the vertex (or, with
bulk deletion, all vertices) farthest from the query pair and restores the
BCC structure (Algorithm 4).  Every intermediate graph that is a valid BCC
containing the query is a candidate answer; the one with the smallest query
distance is returned, which Theorem 3 shows has diameter at most twice the
optimum.

The implementation keeps a single working graph and records only the vertex
set of the best candidate seen so far: every intermediate graph is an induced
subgraph of ``G0`` (the search deletes vertices, never individual edges), so
the winning community can be re-induced from ``G0`` at the end.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Set

from repro.core.bcc_model import BCCParameters, BCCResult, resolve_query_labels
from repro.core.find_g0 import find_g0
from repro.core.maintenance import maintain_bcc
from repro.eval.instrumentation import SearchInstrumentation
from repro.exceptions import (
    REASON_NO_CANDIDATE,
    REASON_NO_COMMUNITY,
    EmptyCommunityError,
)
from repro.graph.csr import csr_bfs_distances
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import (
    INFINITE_DISTANCE,
    farthest_vertices,
    graph_query_distance,
    query_distances,
)


def online_bcc_search(
    graph: LabeledGraph,
    q_left: Vertex,
    q_right: Vertex,
    k1: Optional[int] = None,
    k2: Optional[int] = None,
    b: int = 1,
    bulk_deletion: bool = True,
    max_iterations: Optional[int] = None,
    instrumentation: Optional[SearchInstrumentation] = None,
    use_fast_path: bool = True,
) -> Optional[BCCResult]:
    """Run the Online-BCC greedy search (Algorithm 1).

    This is the legacy one-shot entry point; it delegates to a throwaway
    :class:`repro.api.BCCEngine` so every search flows through the same
    prepared-engine front door.  Long-lived callers should construct the
    engine directly and reuse it across queries.

    Parameters
    ----------
    graph:
        The labeled input graph.
    q_left, q_right:
        Query vertices with different labels.
    k1, k2:
        Core parameters; default to the coreness of the query vertices within
        their own label groups (Section 3.5).
    b:
        Butterfly-degree requirement of the leader pair.
    bulk_deletion:
        When True (the setting used in the paper's experiments), all vertices
        attaining the maximum query distance are removed each iteration;
        otherwise a single vertex is removed, exactly as Algorithm 1 states.
    max_iterations:
        Optional safety cap on the number of peeling iterations.
    instrumentation:
        Optional counters (butterfly-counting calls, timings).
    use_fast_path:
        When True (default), the per-iteration query-distance sweep runs on
        a CSR snapshot of ``G0`` with a dead-id mask (the greedy loop only
        ever deletes vertices, so the snapshot stays valid for the whole
        search).  The result is identical either way — same community, same
        query distance, same iteration count; only the sweep substrate
        differs.

    Returns
    -------
    BCCResult or None
        ``None`` when no (k1, k2, b)-BCC containing the query exists.
    """
    from repro.api import SearchConfig, one_shot_search

    config = SearchConfig(
        k1=k1,
        k2=k2,
        b=b,
        bulk_deletion=bulk_deletion,
        max_iterations=max_iterations,
        fast_path=use_fast_path,
    )
    return one_shot_search(
        "online-bcc", graph, (q_left, q_right), config, instrumentation
    )


def run_online_bcc(
    graph: LabeledGraph,
    q_left: Vertex,
    q_right: Vertex,
    k1: Optional[int] = None,
    k2: Optional[int] = None,
    b: int = 1,
    bulk_deletion: bool = True,
    max_iterations: Optional[int] = None,
    instrumentation: Optional[SearchInstrumentation] = None,
    use_fast_path: bool = True,
    backend: str = "auto",
    groups=None,
) -> BCCResult:
    """Algorithm 1 implementation registered as method ``"online-bcc"``.

    Parameters match :func:`online_bcc_search` plus the engine plumbing:
    ``backend`` selects the kernel substrate for Algorithm 2 and ``groups``
    optionally supplies cached label-induced subgraphs.  Raises
    :class:`EmptyCommunityError` (with a machine-readable ``reason``) when no
    community exists instead of returning ``None``.
    """
    inst = instrumentation if instrumentation is not None else SearchInstrumentation()
    left_label, right_label = resolve_query_labels(graph, q_left, q_right)
    parameters = BCCParameters.from_query(
        graph, q_left, q_right, k1=k1, k2=k2, b=b, groups=groups
    )

    g0 = find_g0(
        graph,
        q_left,
        q_right,
        parameters,
        instrumentation=inst,
        backend=backend,
        groups=groups,
    )
    if g0 is None:
        raise EmptyCommunityError(
            f"no maximal ({parameters.k1}, {parameters.k2}, {parameters.b})-BCC "
            f"candidate contains the query pair",
            reason=REASON_NO_CANDIDATE,
        )

    community = g0.community.copy()
    original = g0.community
    query = [q_left, q_right]

    if use_fast_path:
        # The sweep substrate: G0 frozen once, shrunk via a dead-id mask.
        frozen = original.freeze()
        dead: Set[int] = set()
        query_ids = [frozen.id_of(q) for q in query]
        vertex_of = frozen.vertex_of
        all_ids = range(frozen.num_vertices())

    best_vertices: Optional[Set[Vertex]] = None
    best_distance = math.inf
    iterations = 0

    while True:
        if use_fast_path:
            with inst.time_query_distance():
                dist_maps = [
                    csr_bfs_distances(frozen, qid, dead=dead) for qid in query_ids
                ]
                # One pass over the surviving ids computes dist(G, Q), the
                # farthest vertex set and its distance, mirroring
                # graph_query_distance + farthest_vertices exactly (including
                # iteration order, which follows the freeze order of G0).
                current_distance = 0.0
                unreachable = False
                max_distance = -1.0
                candidate_ids: list = []
                dist_left, dist_right = dist_maps[0], dist_maps[1]
                qid_left, qid_right = query_ids[0], query_ids[1]
                for vid in all_ids:
                    if vid in dead:
                        continue
                    d_l = dist_left[vid]
                    d_r = dist_right[vid]
                    if d_l < 0 or d_r < 0:
                        value = INFINITE_DISTANCE
                        unreachable = True
                    else:
                        value = d_l if d_l >= d_r else d_r
                    if value > current_distance:
                        current_distance = value
                    if vid == qid_left or vid == qid_right:
                        continue
                    if value > max_distance:
                        max_distance = value
                        candidate_ids = [vid]
                    elif value == max_distance:
                        candidate_ids.append(vid)
                if unreachable:
                    current_distance = INFINITE_DISTANCE
            candidates = [vertex_of(vid) for vid in candidate_ids]
        else:
            with inst.time_query_distance():
                distance_maps = query_distances(community, query)
                current_distance = graph_query_distance(community, query, distance_maps)
            candidates, max_distance = farthest_vertices(community, query, distance_maps)
        if current_distance < best_distance:
            best_distance = current_distance
            best_vertices = set(community.vertices())
        if not candidates or max_distance <= 0:
            break
        if max_iterations is not None and iterations >= max_iterations:
            break
        to_delete = candidates if bulk_deletion else [candidates[0]]
        outcome = maintain_bcc(
            community,
            to_delete,
            parameters,
            left_label,
            right_label,
            query_vertices=query,
            check_butterfly=True,
            instrumentation=inst,
        )
        iterations += 1
        inst.record_iteration(deleted=len(outcome.removed))
        if use_fast_path:
            for removed in outcome.removed:
                dead.add(frozen.id_of(removed))
        if not outcome.valid:
            break

    if best_vertices is None:
        raise EmptyCommunityError(reason=REASON_NO_COMMUNITY)

    final_community = original.induced_subgraph(best_vertices)
    result = BCCResult(
        community=final_community,
        left_vertices=final_community.vertices_with_label(left_label),
        right_vertices=final_community.vertices_with_label(right_label),
        left_label=left_label,
        right_label=right_label,
        parameters=parameters,
        query_distance=best_distance,
        iterations=iterations,
        statistics=inst.as_dict(),
    )
    return result
