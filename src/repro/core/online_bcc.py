"""Algorithm 1: the greedy Online-BCC search (2-approximation).

The search first builds the maximal candidate community ``G0`` containing the
query vertices (Algorithm 2), then repeatedly deletes the vertex (or, with
bulk deletion, all vertices) farthest from the query pair and restores the
BCC structure (Algorithm 4).  Every intermediate graph that is a valid BCC
containing the query is a candidate answer; the one with the smallest query
distance is returned, which Theorem 3 shows has diameter at most twice the
optimum.

The implementation keeps a single working graph and records only the vertex
set of the best candidate seen so far: every intermediate graph is an induced
subgraph of ``G0`` (the search deletes vertices, never individual edges), so
the winning community can be re-induced from ``G0`` at the end.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Set

from repro.core.bcc_model import BCCParameters, BCCResult, resolve_query_labels
from repro.core.find_g0 import find_g0
from repro.core.maintenance import maintain_bcc
from repro.eval.instrumentation import SearchInstrumentation
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import (
    INFINITE_DISTANCE,
    farthest_vertices,
    graph_query_distance,
    query_distances,
)


def online_bcc_search(
    graph: LabeledGraph,
    q_left: Vertex,
    q_right: Vertex,
    k1: Optional[int] = None,
    k2: Optional[int] = None,
    b: int = 1,
    bulk_deletion: bool = True,
    max_iterations: Optional[int] = None,
    instrumentation: Optional[SearchInstrumentation] = None,
) -> Optional[BCCResult]:
    """Run the Online-BCC greedy search (Algorithm 1).

    Parameters
    ----------
    graph:
        The labeled input graph.
    q_left, q_right:
        Query vertices with different labels.
    k1, k2:
        Core parameters; default to the coreness of the query vertices within
        their own label groups (Section 3.5).
    b:
        Butterfly-degree requirement of the leader pair.
    bulk_deletion:
        When True (the setting used in the paper's experiments), all vertices
        attaining the maximum query distance are removed each iteration;
        otherwise a single vertex is removed, exactly as Algorithm 1 states.
    max_iterations:
        Optional safety cap on the number of peeling iterations.
    instrumentation:
        Optional counters (butterfly-counting calls, timings).

    Returns
    -------
    BCCResult or None
        ``None`` when no (k1, k2, b)-BCC containing the query exists.
    """
    inst = instrumentation if instrumentation is not None else SearchInstrumentation()
    left_label, right_label = resolve_query_labels(graph, q_left, q_right)
    parameters = BCCParameters.from_query(graph, q_left, q_right, k1=k1, k2=k2, b=b)

    g0 = find_g0(graph, q_left, q_right, parameters, instrumentation=inst)
    if g0 is None:
        return None

    community = g0.community.copy()
    original = g0.community
    query = [q_left, q_right]

    best_vertices: Optional[Set[Vertex]] = None
    best_distance = math.inf
    iterations = 0

    while True:
        with inst.time_query_distance():
            distance_maps = query_distances(community, query)
            current_distance = graph_query_distance(community, query, distance_maps)
        if current_distance < best_distance:
            best_distance = current_distance
            best_vertices = set(community.vertices())
        candidates, max_distance = farthest_vertices(community, query, distance_maps)
        if not candidates or max_distance <= 0:
            break
        if max_iterations is not None and iterations >= max_iterations:
            break
        to_delete = candidates if bulk_deletion else [candidates[0]]
        outcome = maintain_bcc(
            community,
            to_delete,
            parameters,
            left_label,
            right_label,
            query_vertices=query,
            check_butterfly=True,
            instrumentation=inst,
        )
        iterations += 1
        inst.record_iteration(deleted=len(outcome.removed))
        if not outcome.valid:
            break

    if best_vertices is None:
        return None

    final_community = original.induced_subgraph(best_vertices)
    result = BCCResult(
        community=final_community,
        left_vertices=final_community.vertices_with_label(left_label),
        right_vertices=final_community.vertices_with_label(right_label),
        left_label=left_label,
        right_label=right_label,
        parameters=parameters,
        query_distance=best_distance,
        iterations=iterations,
        statistics=inst.as_dict(),
    )
    return result
