"""The paper's primary contribution: BCC model, search algorithms and indexes."""

from repro.core.bc_index import BCIndex, build_bc_index
from repro.core.bcc_model import (
    BCCParameters,
    BCCResult,
    decompose_community,
    is_bcc,
    resolve_query_labels,
    validate_bcc,
)
from repro.core.butterfly import (
    brute_force_butterfly_degrees,
    butterfly_degree_of,
    butterfly_degrees,
    butterfly_degrees_priority,
    enumerate_butterflies,
    max_butterfly_degree_per_side,
    total_butterflies,
)
from repro.core.find_g0 import G0Result, find_g0, maximal_bcc_exists
from repro.core.kcore import (
    core_decomposition,
    degeneracy,
    is_k_core,
    k_core,
    k_core_containing,
    k_core_vertices,
    maintain_k_core,
    max_core_value_containing,
)
from repro.core.ktruss import (
    is_k_truss,
    k_truss,
    k_truss_containing,
    k_truss_vertices,
    max_truss_value_containing,
    truss_decomposition,
)
from repro.core.leader_pair import (
    Leader,
    LeaderPairTracker,
    identify_leader,
    identify_leader_pair,
    updated_leader_degree,
)
from repro.core.local_search import l2p_bcc_search
from repro.core.lp_bcc import lp_bcc_search
from repro.core.maintenance import MaintenanceResult, maintain_bcc, maintain_label_core
from repro.core.multilabel import (
    MBCCResult,
    cross_group_connected,
    find_mbcc_candidate,
    mbcc_search,
)
from repro.core.online_bcc import online_bcc_search
from repro.core.path_weight import (
    PathWeightConfig,
    butterfly_core_shortest_path,
    path_weight,
)
from repro.core.query_distance import QueryDistanceTracker

__all__ = [
    "BCIndex",
    "BCCParameters",
    "BCCResult",
    "G0Result",
    "Leader",
    "LeaderPairTracker",
    "MBCCResult",
    "MaintenanceResult",
    "PathWeightConfig",
    "QueryDistanceTracker",
    "brute_force_butterfly_degrees",
    "build_bc_index",
    "butterfly_core_shortest_path",
    "butterfly_degree_of",
    "butterfly_degrees",
    "butterfly_degrees_priority",
    "core_decomposition",
    "cross_group_connected",
    "decompose_community",
    "degeneracy",
    "enumerate_butterflies",
    "find_g0",
    "find_mbcc_candidate",
    "identify_leader",
    "identify_leader_pair",
    "is_bcc",
    "is_k_core",
    "is_k_truss",
    "k_core",
    "k_core_containing",
    "k_core_vertices",
    "k_truss",
    "k_truss_containing",
    "k_truss_vertices",
    "l2p_bcc_search",
    "lp_bcc_search",
    "maintain_bcc",
    "maintain_k_core",
    "maintain_label_core",
    "max_butterfly_degree_per_side",
    "max_core_value_containing",
    "max_truss_value_containing",
    "maximal_bcc_exists",
    "mbcc_search",
    "online_bcc_search",
    "path_weight",
    "resolve_query_labels",
    "total_butterflies",
    "truss_decomposition",
    "updated_leader_degree",
    "validate_bcc",
]
