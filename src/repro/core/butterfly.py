"""Butterfly counting over cross-group bipartite graphs.

A *butterfly* is a 2×2 biclique (Def. 2); the *butterfly degree* χ(v) is the
number of butterflies containing vertex ``v`` (Def. 3).  The BCC model uses
butterfly degrees to certify cross-group interaction (Def. 4, condition 4).

This module implements:

* :func:`butterfly_degrees` — Algorithm 3: per-vertex butterfly degrees via
  wedge counting with a hash map (``χ(v) = Σ_w C(|N(v) ∩ N(w)|, 2)`` over
  2-hop neighbours ``w``);
* :func:`butterfly_degree_of` — the same count restricted to one vertex;
* :func:`total_butterflies` — the global butterfly count of a bipartite graph
  (each butterfly touches four vertices, so it equals ``Σ_v χ(v) / 4``);
* :func:`butterfly_degrees_priority` — the vertex-priority optimisation of
  Wang et al. [41]: wedges are enumerated from the endpoint with the lower
  (degree, id) priority so each wedge is charged once, halving the work while
  producing identical counts;
* :func:`max_butterfly_degree_per_side` — the ``max_l`` / ``max_r`` values
  Algorithm 2 checks against ``b``;
* :func:`brute_force_butterfly_degrees` — an O(n⁴) reference used by tests.

All functions accept a :class:`~repro.graph.bipartite.BipartiteView`.  The
counting entry points additionally accept ``backend="auto" | "object" |
"csr"``; the CSR fast path (:mod:`repro.graph.csr`) produces identical
counts over interned integer ids and is chosen automatically for large
views.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Optional, Tuple

from repro.graph.bipartite import BipartiteView
from repro.graph.csr import CSRBipartiteView, csr_butterfly_degrees
from repro.graph.labeled_graph import Vertex

#: Cross-edge count above which ``backend="auto"`` freezes the view and
#: counts over flat arrays (below it the freeze overhead dominates).
CSR_BUTTERFLY_MIN_EDGES = 128


def _choose2(n: int) -> int:
    """Return ``n`` choose 2."""
    return n * (n - 1) // 2


def _resolve_backend(bipartite: BipartiteView, backend: str) -> str:
    """Map ``auto`` to ``csr``/``object`` by bipartite size.

    ``"process"`` is the batch-transport backend (:mod:`repro.parallel`);
    inside one process its kernels are exactly the CSR kernels.
    """
    if backend != "auto":
        if backend == "process":
            return "csr"
        if backend not in ("csr", "object"):
            raise ValueError(f"unknown backend {backend!r}")
        return backend
    return "csr" if bipartite.num_edges() >= CSR_BUTTERFLY_MIN_EDGES else "object"


def _csr_butterfly_degrees(bipartite: BipartiteView) -> Dict[Vertex, int]:
    """Freeze the view and count butterflies over flat integer arrays."""
    frozen = CSRBipartiteView.freeze(bipartite)
    vertex_of = frozen.vertex_of
    return {vertex_of(i): c for i, c in enumerate(csr_butterfly_degrees(frozen))}


def butterfly_degree_of(bipartite: BipartiteView, vertex: Vertex) -> int:
    """Return χ(vertex): the number of butterflies containing ``vertex``.

    Uses the per-vertex wedge count of Algorithm 3: accumulate, for every
    2-hop neighbour ``w`` of ``vertex``, the number of length-2 paths
    ``P[w]`` between them, then sum ``C(P[w], 2)``.
    """
    if vertex not in bipartite:
        return 0
    paths: Dict[Vertex, int] = {}
    for u in bipartite.neighbors(vertex):
        for w in bipartite.neighbors(u):
            if w == vertex:
                continue
            paths[w] = paths.get(w, 0) + 1
    return sum(_choose2(count) for count in paths.values())


def butterfly_degrees(bipartite: BipartiteView, backend: str = "auto") -> Dict[Vertex, int]:
    """Return χ(v) for every vertex of the bipartite graph (Algorithm 3).

    ``backend`` selects the counting substrate: ``"object"`` runs the plain
    per-vertex wedge count over the adjacency sets, ``"csr"`` freezes the
    view and runs the flat-array vertex-priority kernel
    (:func:`repro.graph.csr.csr_butterfly_degrees`), and ``"auto"`` picks by
    size.  Every backend returns exactly the same counts.
    """
    if _resolve_backend(bipartite, backend) == "csr":
        return _csr_butterfly_degrees(bipartite)
    degrees: Dict[Vertex, int] = {}
    for vertex in bipartite.vertices():
        degrees[vertex] = butterfly_degree_of(bipartite, vertex)
    return degrees


def butterfly_degrees_priority(
    bipartite: BipartiteView, backend: str = "auto"
) -> Dict[Vertex, int]:
    """Return χ(v) for every vertex using single-enumeration wedge processing.

    Inspired by the vertex-priority counting of Wang et al. [41]: instead of
    re-counting butterflies once per member vertex (as the plain Algorithm 3
    does), every butterfly is enumerated exactly once — from the
    lower-priority endpoint of its *left* same-side pair — and its
    contribution is credited to all four member vertices in one pass.  The
    enumeration side is chosen as the side with the smaller total degree so
    that the wedge work is minimised.  The output matches
    :func:`butterfly_degrees` exactly; only the work performed differs.  The
    ``"csr"``/``"auto"`` backends route to the flat-array implementation of
    the same strategy.
    """
    if _resolve_backend(bipartite, backend) == "csr":
        return _csr_butterfly_degrees(bipartite)
    degrees: Dict[Vertex, int] = {v: 0 for v in bipartite.vertices()}

    left = bipartite.left()
    right = bipartite.right()
    left_work = sum(bipartite.degree(v) for v in left)
    right_work = sum(bipartite.degree(v) for v in right)
    enumeration_side = left if left_work <= right_work else right

    def priority(v: Vertex) -> Tuple[int, str]:
        return (bipartite.degree(v), repr(v))

    for v in enumeration_side:
        pv = priority(v)
        # Wedge counts to same-side 2-hop neighbours with higher priority, and
        # the multiset of middle vertices for each such endpoint pair.
        paths: Dict[Vertex, int] = {}
        middles: Dict[Vertex, list] = {}
        for u in bipartite.neighbors(v):
            for w in bipartite.neighbors(u):
                if w == v or priority(w) <= pv:
                    continue
                paths[w] = paths.get(w, 0) + 1
                middles.setdefault(w, []).append(u)
        for w, count in paths.items():
            butterflies = _choose2(count)
            if butterflies == 0:
                continue
            degrees[v] += butterflies
            degrees[w] += butterflies
            # Each middle vertex u participates in (count - 1) butterflies of
            # this (v, w) pair: one for each choice of the other middle vertex.
            for u in middles[w]:
                degrees[u] += count - 1
    return degrees


def total_butterflies(bipartite: BipartiteView) -> int:
    """Return the number of distinct butterflies in the bipartite graph.

    Counted from one side only: for every unordered pair of left vertices, the
    number of butterflies they span is ``C(common neighbours, 2)``.
    """
    left = list(bipartite.left())
    total = 0
    for v in left:
        paths: Dict[Vertex, int] = {}
        for u in bipartite.neighbors(v):
            for w in bipartite.neighbors(u):
                if w == v:
                    continue
                paths[w] = paths.get(w, 0) + 1
        total += sum(_choose2(count) for count in paths.values())
    # Each butterfly is counted once per ordered pair of its two left
    # vertices, i.e. twice.
    return total // 2


def max_butterfly_degree_per_side(
    bipartite: BipartiteView,
    degrees: Optional[Dict[Vertex, int]] = None,
) -> Tuple[int, int]:
    """Return ``(max_l, max_r)``: the maximum χ on the left and right sides.

    A caller-supplied ``degrees`` map is always treated as authoritative —
    including an *empty* dict (e.g. from a search step that skipped
    butterfly counting), which yields ``(0, 0)`` rather than triggering a
    silent recount.  Only ``degrees=None`` runs Algorithm 3.
    """
    if degrees is None:
        degrees = butterfly_degrees(bipartite)
    max_left = max((degrees.get(v, 0) for v in bipartite.left()), default=0)
    max_right = max((degrees.get(v, 0) for v in bipartite.right()), default=0)
    return max_left, max_right


def vertices_with_butterfly_at_least(
    bipartite: BipartiteView,
    threshold: int,
    degrees: Optional[Dict[Vertex, int]] = None,
) -> Dict[str, set]:
    """Return per-side sets of vertices whose butterfly degree is >= threshold.

    As with :func:`max_butterfly_degree_per_side`, a caller-supplied
    ``degrees`` map (even an empty one) is reused verbatim; counting only
    runs when ``degrees`` is ``None``.
    """
    if degrees is None:
        degrees = butterfly_degrees(bipartite)
    return {
        "left": {v for v in bipartite.left() if degrees.get(v, 0) >= threshold},
        "right": {v for v in bipartite.right() if degrees.get(v, 0) >= threshold},
    }


def enumerate_butterflies(
    bipartite: BipartiteView,
) -> Iterable[Tuple[Vertex, Vertex, Vertex, Vertex]]:
    """Yield every butterfly as ``(l1, l2, r1, r2)`` with l1 < l2 and r1 < r2.

    Intended for small graphs (tests, case-study reporting); the count grows
    combinatorially on dense bipartite graphs.
    """
    left = sorted(bipartite.left(), key=repr)
    for l1, l2 in itertools.combinations(left, 2):
        common = sorted(bipartite.neighbors(l1) & bipartite.neighbors(l2), key=repr)
        for r1, r2 in itertools.combinations(common, 2):
            yield (l1, l2, r1, r2)


def brute_force_butterfly_degrees(bipartite: BipartiteView) -> Dict[Vertex, int]:
    """Reference implementation: count butterflies by explicit enumeration.

    Only suitable for small graphs; used by the test suite to validate
    :func:`butterfly_degrees` and :func:`butterfly_degrees_priority`.
    """
    degrees: Dict[Vertex, int] = {v: 0 for v in bipartite.vertices()}
    for l1, l2, r1, r2 in enumerate_butterflies(bipartite):
        for vertex in (l1, l2, r1, r2):
            degrees[vertex] += 1
    return degrees
