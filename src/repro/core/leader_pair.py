"""Algorithms 6 and 7: leader-pair identification and butterfly-degree update.

The BCC definition only requires *one* vertex per side whose butterfly degree
is at least ``b`` (the leader pair).  Re-running the full butterfly counting
(Algorithm 3) after every deletion just to re-verify this is wasteful, so the
paper proposes:

* **Algorithm 6 — leader pair identification.**  Pick, on each side, a vertex
  close to the query vertex whose butterfly degree is comfortably above the
  requirement (starting from half of the side's maximum butterfly degree and
  relaxing towards ``b``).  Such a vertex tends to keep satisfying χ >= b for
  many deletion rounds and tends not to be deleted early (it is close to the
  query).

* **Algorithm 7 — leader butterfly-degree update.**  When a vertex ``v`` is
  deleted, the leader ``p``'s butterfly degree decreases by the number of
  butterflies containing both ``p`` and ``v``; that number can be computed
  locally from common neighbourhoods, without any global recount.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.graph.bipartite import BipartiteView
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import bfs_distances


def _choose2(n: int) -> int:
    return n * (n - 1) // 2


@dataclass
class Leader:
    """A leader vertex together with its tracked butterfly degree."""

    vertex: Vertex
    butterfly_degree: int


def identify_leader(
    group: LabeledGraph,
    query: Vertex,
    butterfly_degrees: Dict[Vertex, int],
    b: int,
    rho: int = 2,
) -> Leader:
    """Algorithm 6: find a leader vertex for one side of the community.

    Parameters
    ----------
    group:
        The intra-group subgraph (``L`` or ``R``) used to measure hop
        distances from the query vertex.
    query:
        The query vertex on this side (``q_l`` or ``q_r``).
    butterfly_degrees:
        Current χ(v) values for the side's vertices (cross-group butterflies).
    b:
        The butterfly-degree requirement of the BCC query.
    rho:
        Search radius: leaders are looked for within ``rho`` hops of the query.

    Returns
    -------
    Leader
        The chosen leader and its current butterfly degree.  When no vertex
        within ``rho`` hops reaches the relaxed thresholds, the query vertex
        itself is returned (line 16 of Algorithm 6).
    """
    chi = lambda v: butterfly_degrees.get(v, 0)  # noqa: E731 - tiny local alias
    candidate = query
    b_max = 0
    for v in group.vertices():
        b_max = max(b_max, chi(v))
    threshold = b_max / 2.0
    if chi(candidate) > threshold:
        return Leader(candidate, chi(candidate))
    # Hop distances from the query within the group (bounded by rho).
    distances = bfs_distances(group, query, max_depth=rho) if query in group else {}
    by_distance: Dict[int, list] = {}
    for v, d in distances.items():
        if v == query:
            continue
        by_distance.setdefault(d, []).append(v)
    while threshold >= b and threshold > 0:
        for d in range(1, rho + 1):
            for v in by_distance.get(d, []):
                if chi(v) >= threshold:
                    return Leader(v, chi(v))
        threshold /= 2.0
    return Leader(candidate, chi(candidate))


def identify_leader_pair(
    left_group: LabeledGraph,
    right_group: LabeledGraph,
    q_left: Vertex,
    q_right: Vertex,
    butterfly_degrees: Dict[Vertex, int],
    b: int,
    rho: int = 2,
) -> Tuple[Leader, Leader]:
    """Identify a leader on each side (Algorithm 6 applied twice)."""
    left = identify_leader(left_group, q_left, butterfly_degrees, b, rho)
    right = identify_leader(right_group, q_right, butterfly_degrees, b, rho)
    return left, right


def updated_leader_degree(
    bipartite: BipartiteView,
    leader: Vertex,
    leader_label_same_as_deleted: bool,
    deleted: Vertex,
) -> int:
    """Algorithm 7: return the decrease of χ(leader) caused by deleting ``deleted``.

    The bipartite view must still contain ``deleted`` (call this *before*
    removing the vertex from the view).

    * Same side (ℓ(p) = ℓ(v)): the butterflies containing both are
      ``C(|N(p) ∩ N(v)|, 2)``.
    * Opposite side and adjacent: for every other neighbour ``u`` of ``v``,
      the pair (p, u) loses the butterflies in which ``v`` was one of the two
      common neighbours, i.e. ``|N(u) ∩ N(p)| - 1`` each (the ``-1`` removes
      the wedge through ``v`` itself); non-adjacent opposite-side vertices
      share no butterfly with the leader's perspective that involves an edge
      to ``p``... they may still share butterflies, see note below.

    Note: two opposite-side vertices that are *not* adjacent can still lie in
    a common butterfly only if ... they cannot: a butterfly containing both a
    left vertex ``p`` and a right vertex ``v`` requires all four cross edges
    of the biclique, in particular the edge (p, v).  Hence the adjacency test
    of line 5.
    """
    if deleted not in bipartite or leader not in bipartite:
        return 0
    if leader == deleted:
        return 0
    if leader_label_same_as_deleted:
        common = bipartite.neighbors(leader) & bipartite.neighbors(deleted)
        return _choose2(len(common))
    if deleted not in bipartite.neighbors(leader):
        return 0
    loss = 0
    leader_neighbors = bipartite.neighbors(leader)
    for u in bipartite.neighbors(deleted):
        if u == leader:
            continue
        shared = len(bipartite.neighbors(u) & leader_neighbors)
        if shared >= 1:
            loss += shared - 1
    return loss


class LeaderPairTracker:
    """Maintains a leader pair and its butterfly degrees across deletions.

    This is the runtime companion of Algorithms 6 and 7 used by LP-BCC and
    L2P-BCC: the tracker owns a :class:`BipartiteView` of the current
    community, keeps the two leaders' butterfly degrees up to date as vertices
    are deleted (Algorithm 7), and falls back to a full butterfly recount plus
    re-identification (Algorithm 6) only when a leader is deleted or its
    degree drops below ``b``.

    Parameters
    ----------
    bipartite:
        The cross-group bipartite view of the community; the tracker mutates
        it as vertices are deleted.
    butterfly_degrees:
        Initial χ values (from Algorithm 2's counting).
    q_left, q_right:
        The query vertices (used when re-identifying leaders).
    b:
        Butterfly-degree requirement.
    rho:
        Leader search radius for Algorithm 6.
    instrumentation:
        Optional counter object; full recounts are recorded as
        butterfly-counting calls and leader updates are timed into
        ``leader_update_seconds``.
    """

    def __init__(
        self,
        bipartite: BipartiteView,
        butterfly_degrees: Dict[Vertex, int],
        q_left: Vertex,
        q_right: Vertex,
        b: int,
        rho: int = 2,
        instrumentation=None,
    ) -> None:
        self._bipartite = bipartite
        self._q_left = q_left
        self._q_right = q_right
        self._b = b
        self._rho = rho
        self._instrumentation = instrumentation
        self.full_recounts = 0
        self._left_leader: Optional[Leader] = None
        self._right_leader: Optional[Leader] = None
        self._initialise_leaders(butterfly_degrees)

    # ------------------------------------------------------------------
    # initialisation / re-identification
    # ------------------------------------------------------------------
    def _initialise_leaders(self, degrees: Dict[Vertex, int]) -> None:
        left_best = self._best_on_side(self._bipartite.left(), degrees, self._q_left)
        right_best = self._best_on_side(self._bipartite.right(), degrees, self._q_right)
        self._left_leader = left_best
        self._right_leader = right_best

    def _best_on_side(
        self, side, degrees: Dict[Vertex, int], query: Vertex
    ) -> Optional[Leader]:
        """Pick a leader on one side, preferring the query vertex when adequate.

        This is Algorithm 6 without the hop-distance refinement (which needs
        the intra-group graph); callers with access to the group subgraphs
        can use :func:`identify_leader` and :meth:`set_leaders` instead.
        """
        if not side:
            return None
        b_max = max((degrees.get(v, 0) for v in side), default=0)
        threshold = b_max / 2.0
        if query in side and degrees.get(query, 0) > threshold:
            return Leader(query, degrees.get(query, 0))
        best_vertex = max(side, key=lambda v: (degrees.get(v, 0), repr(v)))
        return Leader(best_vertex, degrees.get(best_vertex, 0))

    def set_leaders(self, left: Leader, right: Leader) -> None:
        """Install externally identified leaders (e.g. from :func:`identify_leader`)."""
        self._left_leader = left
        self._right_leader = right

    def leaders(self) -> Tuple[Optional[Leader], Optional[Leader]]:
        """Return the current (left, right) leaders."""
        return self._left_leader, self._right_leader

    def leader_pair(self) -> Optional[Tuple[Vertex, Vertex]]:
        """Return the leader vertices as a pair, if both exist."""
        if self._left_leader is None or self._right_leader is None:
            return None
        return (self._left_leader.vertex, self._right_leader.vertex)

    # ------------------------------------------------------------------
    # deletion handling
    # ------------------------------------------------------------------
    def remove_vertices(self, deleted) -> None:
        """Apply a batch of deletions, updating leader degrees (Algorithm 7)."""
        deleted = [v for v in deleted if v in self._bipartite]
        for vertex in deleted:
            self._apply_single_deletion(vertex)

    def _apply_single_deletion(self, vertex: Vertex) -> None:
        timer = (
            self._instrumentation.time_leader_update()
            if self._instrumentation is not None
            else _null_context()
        )
        with timer:
            for side_name in ("left", "right"):
                leader = self._left_leader if side_name == "left" else self._right_leader
                if leader is None or leader.vertex == vertex:
                    continue
                same_side = (vertex in self._bipartite.left()) == (
                    leader.vertex in self._bipartite.left()
                )
                loss = updated_leader_degree(
                    self._bipartite, leader.vertex, same_side, vertex
                )
                leader.butterfly_degree -= loss
            left_lost = self._left_leader is not None and self._left_leader.vertex == vertex
            right_lost = (
                self._right_leader is not None and self._right_leader.vertex == vertex
            )
        self._bipartite.remove_vertex(vertex)
        if left_lost:
            self._left_leader = None
        if right_lost:
            self._right_leader = None

    # ------------------------------------------------------------------
    # validity checking
    # ------------------------------------------------------------------
    def leaders_satisfy_requirement(self) -> bool:
        """Return True when both tracked leaders still have χ >= b."""
        return (
            self._left_leader is not None
            and self._right_leader is not None
            and self._left_leader.butterfly_degree >= self._b
            and self._right_leader.butterfly_degree >= self._b
        )

    def revalidate(self) -> bool:
        """Ensure a valid leader pair exists, recounting butterflies if needed.

        Returns True when the butterfly constraint of Def. 4 still holds for
        the current bipartite graph.  A full recount (Algorithm 3) happens
        only when the incrementally tracked leaders no longer satisfy the
        requirement.
        """
        if self.leaders_satisfy_requirement():
            return True
        from repro.core.butterfly import butterfly_degrees as count_all

        degrees = count_all(self._bipartite)
        self.full_recounts += 1
        if self._instrumentation is not None:
            self._instrumentation.record_butterfly_counting()
        self._initialise_leaders(degrees)
        return self.leaders_satisfy_requirement()

    @property
    def bipartite(self) -> BipartiteView:
        """The tracked cross-group bipartite view (mutated by deletions)."""
        return self._bipartite


class _null_context:
    """A no-op context manager used when no instrumentation is attached."""

    def __enter__(self):  # noqa: D105 - trivial
        return self

    def __exit__(self, *exc):  # noqa: D105 - trivial
        return False
