"""Algorithm 8: L2P-BCC — index-based local exploration.

The full Online-BCC / LP-BCC searches start from the maximal candidate
community ``G0``, which on large graphs can contain most of the two label
groups.  L2P-BCC avoids this by working locally around the query vertices:

1. compute a shortest path between the two query vertices under the
   butterfly-core path weight of Def. 6 (preferring liaison vertices with
   high coreness and butterfly degree), using the offline
   :class:`~repro.core.bc_index.BCIndex`;
2. take the minimum label-group coreness along the path on each side
   (``k_l``, ``k_r``) as expansion thresholds;
3. expand the path into a candidate graph ``G_t`` by a BFS that only admits
   vertices of the two query labels whose indexed coreness reaches the
   threshold for their side, stopping once ``|V(G_t)| > eta``;
4. extract a connected (k1, k2, b)-BCC containing the query from ``G_t`` —
   when ``k1``/``k2`` are not supplied they default to the largest values
   that still admit a connected core around each query vertex inside the
   candidate graph;
5. refine the candidate with the LP-BCC bulk-deletion loop (removing the
   farthest vertices while maintaining the BCC).

L2P-BCC does not carry the 2-approximation guarantee (the candidate graph is
local), but it is the fastest method in the paper's evaluation and attains
the best F1 on most networks.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Set

from repro.core.bc_index import BCIndex
from repro.core.bcc_model import BCCParameters, BCCResult, resolve_query_labels
from repro.core.kcore import core_decomposition
from repro.core.lp_bcc import DEFAULT_RHO, run_lp_bcc
from repro.core.path_weight import PathWeightConfig, butterfly_core_shortest_path
from repro.eval.instrumentation import SearchInstrumentation
from repro.exceptions import REASON_QUERY_DISCONNECTED, EmptyCommunityError
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import shortest_path


DEFAULT_CANDIDATE_SIZE = 400


def expand_candidate_graph(
    graph: LabeledGraph,
    seed_path,
    index: BCIndex,
    left_label,
    right_label,
    k_left: int,
    k_right: int,
    eta: int,
) -> LabeledGraph:
    """Expand a seed path into a candidate graph ``G_t`` (Algorithm 8, line 3).

    Vertices are added in BFS order starting from the path; a vertex is
    admitted when it carries one of the two query labels and its indexed
    label-group coreness is at least the threshold of its side.  Expansion
    stops when the candidate exceeds ``eta`` vertices (the current BFS layer
    is completed so the cut is deterministic).  Finally all edges of ``graph``
    between admitted vertices are added.
    """
    admitted: Set[Vertex] = set()
    queue = deque()
    for vertex in seed_path:
        if vertex in graph and vertex not in admitted:
            admitted.add(vertex)
            queue.append(vertex)
    while queue and len(admitted) <= eta:
        vertex = queue.popleft()
        for neighbor in graph.neighbors(vertex):
            if neighbor in admitted:
                continue
            label = graph.label(neighbor)
            if label == left_label:
                if index.coreness(neighbor) < k_left:
                    continue
            elif label == right_label:
                if index.coreness(neighbor) < k_right:
                    continue
            else:
                continue
            admitted.add(neighbor)
            queue.append(neighbor)
    return graph.induced_subgraph(admitted)


def _auto_core_parameter(
    candidate: LabeledGraph, label, query: Vertex, backend: str = "auto"
) -> int:
    """Return the largest coreness of ``query`` within its label group of ``candidate``."""
    group = candidate.label_induced_subgraph(label)
    if query not in group:
        return 0
    return core_decomposition(group, backend=backend).get(query, 0)


def l2p_bcc_search(
    graph: LabeledGraph,
    q_left: Vertex,
    q_right: Vertex,
    k1: Optional[int] = None,
    k2: Optional[int] = None,
    b: int = 1,
    index: Optional[BCIndex] = None,
    eta: int = DEFAULT_CANDIDATE_SIZE,
    path_config: PathWeightConfig = PathWeightConfig(),
    rho: int = DEFAULT_RHO,
    max_iterations: Optional[int] = None,
    instrumentation: Optional[SearchInstrumentation] = None,
) -> Optional[BCCResult]:
    """Run the L2P-BCC local search (Algorithm 8).

    This legacy one-shot entry point delegates to a throwaway
    :class:`repro.api.BCCEngine`; pass ``index`` to reuse a pre-built
    BCindex, or hold a long-lived engine to have it built and cached once.

    Parameters
    ----------
    graph:
        The labeled input graph.
    q_left, q_right:
        Query vertices with different labels.
    k1, k2:
        Core parameters; when omitted they are set automatically to the
        largest coreness admitting a connected core around each query vertex
        inside the candidate graph (Algorithm 8, line 4).
    b:
        Butterfly-degree requirement.
    index:
        A pre-built :class:`BCIndex`; built on the fly when omitted (building
        it once and reusing it across queries is what makes L2P-BCC fast).
    eta:
        Candidate-graph size threshold (empirically tuned; default 400).
    path_config:
        γ1/γ2 weights of the butterfly-core path weight (paper default 0.5).
    rho, max_iterations, instrumentation:
        Passed through to the LP-BCC refinement.
    """
    from repro.api import SearchConfig, one_shot_search

    config = SearchConfig(
        k1=k1,
        k2=k2,
        b=b,
        rho=rho,
        max_iterations=max_iterations,
        eta=eta,
        path_config=path_config,
    )
    return one_shot_search(
        "l2p-bcc", graph, (q_left, q_right), config, instrumentation, index=index
    )


def run_l2p_bcc(
    graph: LabeledGraph,
    q_left: Vertex,
    q_right: Vertex,
    k1: Optional[int] = None,
    k2: Optional[int] = None,
    b: int = 1,
    index: Optional[BCIndex] = None,
    eta: int = DEFAULT_CANDIDATE_SIZE,
    path_config: PathWeightConfig = PathWeightConfig(),
    rho: int = DEFAULT_RHO,
    max_iterations: Optional[int] = None,
    instrumentation: Optional[SearchInstrumentation] = None,
    backend: str = "auto",
    groups=None,
) -> BCCResult:
    """L2P-BCC implementation registered as method ``"l2p-bcc"``.

    Parameters match :func:`l2p_bcc_search`; ``backend`` selects the kernel
    substrate throughout (index build, candidate cores, LP-BCC refinement)
    and ``groups`` optionally supplies cached label-induced subgraphs used
    by the global LP-BCC fallback.  Raises :class:`EmptyCommunityError`
    instead of returning ``None``.
    """
    inst = instrumentation if instrumentation is not None else SearchInstrumentation()
    left_label, right_label = resolve_query_labels(graph, q_left, q_right)
    if index is None:
        index = BCIndex(graph, backend=backend)
    elif not index.is_built():
        index.build()

    # Line 1: butterfly-core weighted shortest path connecting the query pair.
    seed_path = butterfly_core_shortest_path(
        graph, q_left, q_right, index, left_label, right_label, config=path_config
    )
    if seed_path is None:
        seed_path = shortest_path(graph, q_left, q_right)
    if seed_path is None:
        raise EmptyCommunityError(
            f"query vertices {q_left!r} and {q_right!r} are not connected",
            reason=REASON_QUERY_DISCONNECTED,
        )

    # Line 2: per-side expansion thresholds from the path's minimum coreness.
    left_on_path = [v for v in seed_path if graph.label(v) == left_label]
    right_on_path = [v for v in seed_path if graph.label(v) == right_label]
    k_left_threshold = min((index.coreness(v) for v in left_on_path), default=0)
    k_right_threshold = min((index.coreness(v) for v in right_on_path), default=0)

    # Line 3: local expansion into the candidate graph G_t.
    candidate = expand_candidate_graph(
        graph,
        seed_path,
        index,
        left_label,
        right_label,
        k_left_threshold,
        k_right_threshold,
        eta,
    )
    inst.add("candidate_vertices", float(candidate.num_vertices()))

    # Line 4: core parameters default to the largest coreness on each side of
    # the candidate graph.
    if k1 is None:
        k1 = _auto_core_parameter(candidate, left_label, q_left, backend=backend)
    if k2 is None:
        k2 = _auto_core_parameter(candidate, right_label, q_right, backend=backend)
    parameters = BCCParameters(k1=k1, k2=k2, b=b)

    # Line 5: refine with the LP-BCC loop (bulk deletion of farthest vertices).
    try:
        result = run_lp_bcc(
            candidate,
            q_left,
            q_right,
            k1=parameters.k1,
            k2=parameters.k2,
            b=parameters.b,
            bulk_deletion=True,
            rho=rho,
            max_iterations=max_iterations,
            instrumentation=inst,
            backend=backend,
        )
    except EmptyCommunityError:
        if candidate.num_vertices() >= graph.num_vertices():
            raise
        # The local candidate missed the community (e.g. eta too small for the
        # required cores); fall back to the global LP-BCC search so that the
        # method degrades gracefully instead of returning nothing.
        inst.add("fallback_to_global", 1.0)
        result = run_lp_bcc(
            graph,
            q_left,
            q_right,
            k1=None if k1 == 0 else k1,
            k2=None if k2 == 0 else k2,
            b=b,
            bulk_deletion=True,
            rho=rho,
            max_iterations=max_iterations,
            instrumentation=inst,
            backend=backend,
            groups=groups,
        )
    result.statistics.update(inst.as_dict())
    return result
