"""Algorithm 4: butterfly-core maintenance after vertex deletions.

When the greedy search (Algorithm 1) removes a vertex ``u*`` — or a bulk of
vertices — from the current community, the remaining graph may stop being a
(k1, k2, b)-BCC: intra-group degrees drop below ``k1``/``k2``, and butterfly
degrees shrink.  Algorithm 4 restores the structure:

1. split the removed set by label,
2. cascade-remove vertices whose intra-group degree fell below the threshold
   on each side (k-core maintenance),
3. update the cross-group bipartite graph,
4. re-count butterfly degrees and check that a leader pair still exists.

:func:`maintain_bcc` performs all four steps on the community graph *in
place* and reports whether the result is still a valid BCC containing the
query vertices.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Set

from repro.core.bcc_model import BCCParameters
from repro.core.butterfly import butterfly_degrees, max_butterfly_degree_per_side
from repro.graph.bipartite import BipartiteView, extract_bipartite
from repro.graph.labeled_graph import LabeledGraph, Label, Vertex
from repro.graph.traversal import are_connected


@dataclass
class MaintenanceResult:
    """Outcome of one Algorithm 4 invocation."""

    valid: bool
    removed: Set[Vertex] = field(default_factory=set)
    reason: str = ""
    bipartite: Optional[BipartiteView] = None
    butterfly_degrees: Dict[Vertex, int] = field(default_factory=dict)


def _intra_group_degree(community: LabeledGraph, vertex: Vertex, label: Label) -> int:
    """Return the number of neighbours of ``vertex`` carrying ``label``."""
    return sum(1 for w in community.neighbors(vertex) if community.label(w) == label)


def maintain_label_core(
    community: LabeledGraph,
    label: Label,
    k: int,
    removals: Iterable[Vertex],
) -> Set[Vertex]:
    """Remove ``removals`` and cascade until the ``label`` group is a k-core again.

    Degrees are counted within the label group only (intra-group edges), which
    matches Def. 4 where each group's core is taken over the induced subgraph
    of its own label.  Vertices of other labels are never touched by the
    cascade.  The community graph is modified in place; the set of all removed
    vertices is returned.
    """
    removed: Set[Vertex] = set()
    queue = deque()
    for vertex in removals:
        if vertex in community:
            neighbors = set(community.neighbors(vertex))
            community.remove_vertex(vertex)
            removed.add(vertex)
            for neighbor in neighbors:
                if neighbor in community and community.label(neighbor) == label:
                    queue.append(neighbor)
    while queue:
        vertex = queue.popleft()
        if vertex not in community:
            continue
        if _intra_group_degree(community, vertex, label) >= k:
            continue
        neighbors = set(community.neighbors(vertex))
        community.remove_vertex(vertex)
        removed.add(vertex)
        for neighbor in neighbors:
            if neighbor in community and community.label(neighbor) == label:
                queue.append(neighbor)
    return removed


def maintain_bcc(
    community: LabeledGraph,
    removals: Iterable[Vertex],
    parameters: BCCParameters,
    left_label: Label,
    right_label: Label,
    query_vertices: Optional[Sequence[Vertex]] = None,
    check_butterfly: bool = True,
    instrumentation=None,
) -> MaintenanceResult:
    """Run Algorithm 4 on ``community`` in place.

    Parameters
    ----------
    community:
        The current community graph ``G_l`` (modified in place).
    removals:
        The vertex set ``S`` selected for deletion (e.g. the farthest vertex,
        or a bulk of farthest vertices).
    parameters:
        The (k1, k2, b) parameters of the query.
    left_label, right_label:
        The two community labels; left corresponds to ``k1``.
    query_vertices:
        When provided, the result is only ``valid`` if every query vertex
        survived and the query vertices remain connected in the community.
    check_butterfly:
        When True (default), re-count butterfly degrees with Algorithm 3 and
        require a leader pair (Def. 4, condition 4).  LP-BCC sets this to
        False and maintains the leader pair incrementally instead
        (Algorithms 6 and 7).
    instrumentation:
        Optional counter object recording butterfly-counting invocations.

    Returns
    -------
    MaintenanceResult
        ``valid`` is False when the community ceased to be a BCC containing
        the query; ``removed`` lists every vertex removed by this call.
    """
    removals = list(removals)
    left_removals = [v for v in removals if v in community and community.label(v) == left_label]
    right_removals = [v for v in removals if v in community and community.label(v) == right_label]

    removed: Set[Vertex] = set()
    removed |= maintain_label_core(community, left_label, parameters.k1, left_removals)
    removed |= maintain_label_core(community, right_label, parameters.k2, right_removals)

    # Cascades on one side change cross degrees only, never intra-group
    # degrees of the other side, so one pass per side suffices.

    if query_vertices is not None:
        lost = [q for q in query_vertices if q not in community]
        if lost:
            return MaintenanceResult(
                valid=False, removed=removed, reason=f"query vertices {lost!r} removed"
            )

    left_vertices = community.vertices_with_label(left_label)
    right_vertices = community.vertices_with_label(right_label)
    if not left_vertices or not right_vertices:
        return MaintenanceResult(
            valid=False, removed=removed, reason="one label group became empty"
        )

    bipartite = extract_bipartite(community, left_vertices, right_vertices)
    degrees: Dict[Vertex, int] = {}
    if check_butterfly:
        degrees = butterfly_degrees(bipartite)
        if instrumentation is not None:
            instrumentation.record_butterfly_counting()
        max_left, max_right = max_butterfly_degree_per_side(bipartite, degrees)
        if max_left < parameters.b or max_right < parameters.b:
            return MaintenanceResult(
                valid=False,
                removed=removed,
                reason=(
                    f"butterfly constraint violated (max_l={max_left}, "
                    f"max_r={max_right}, b={parameters.b})"
                ),
                bipartite=bipartite,
                butterfly_degrees=degrees,
            )

    if query_vertices is not None and not are_connected(community, query_vertices):
        return MaintenanceResult(
            valid=False,
            removed=removed,
            reason="query vertices disconnected",
            bipartite=bipartite,
            butterfly_degrees=degrees,
        )

    return MaintenanceResult(
        valid=True,
        removed=removed,
        bipartite=bipartite,
        butterfly_degrees=degrees,
    )
