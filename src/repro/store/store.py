"""The snapshot store: a directory of named graph (and shard) snapshots.

:class:`SnapshotStore` gives the serving layer its attach-or-build
contract: look for a persisted snapshot under the store root, attach to
it when it is structurally valid *and* fingerprints the live graph
(milliseconds), otherwise fall back to the normal prepare + index build
and persist the result so the next process attaches.  Stale and corrupted
snapshots are never trusted — a failed attach is counted, logged in the
store's counters, and silently repaired by the rebuild path.

Layout under the root::

    <root>/<name>/graph.bccsnap        # monolithic engine snapshot
    <root>/<name>/shard-00003.bccsnap  # one per shard of a sharded engine

Thread safety: counters are guarded by a leaf lock (counted outside any
other lock, matching the serving layer's lock discipline); file writes
are atomic via the writer's tmp + rename, so concurrent builders of the
same snapshot race benignly (last writer wins, both files are whole).
"""

from __future__ import annotations

import re
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.api.config import SearchConfig
from repro.api.engine import BCCEngine
from repro.exceptions import StoreError
from repro.graph.labeled_graph import LabeledGraph
from repro.store.snapshot import Snapshot, attach_engine, persist_engine

PathLike = Union[str, Path]

#: Served-graph names become directory names; keep them portable.
_SAFE_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: File extension of every snapshot the store manages.
SNAPSHOT_SUFFIX = ".bccsnap"

#: Counter names a store exposes (fixed tuple so stats payloads are stable).
STORE_COUNTER_NAMES = (
    "attaches",
    "builds",
    "persists",
    "mismatches",
    "invalid",
)


def _safe_name(name: str) -> str:
    if not _SAFE_NAME.match(name):
        raise StoreError(
            f"served-graph name {name!r} is not usable as a store directory "
            f"(allowed: letters, digits, '.', '_', '-')"
        )
    return name


class SnapshotStore:
    """A directory of persisted engine snapshots, keyed by served name.

    Parameters
    ----------
    root:
        Directory to keep snapshots under (created on first use).
    butterfly_pairs:
        Forwarded to :class:`~repro.store.SnapshotWriter` when the store
        persists — ``"all"`` by default, so attached engines never compute
        a butterfly table.
    """

    def __init__(self, root: PathLike, *, butterfly_pairs: str = "all") -> None:
        self.root = Path(root)
        self.butterfly_pairs = butterfly_pairs
        self._counters: Dict[str, int] = {name: 0 for name in STORE_COUNTER_NAMES}
        self._counters_lock = threading.Lock()

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def graph_path(self, name: str) -> Path:
        """Where the monolithic snapshot of served graph ``name`` lives."""
        return self.root / _safe_name(name) / f"graph{SNAPSHOT_SUFFIX}"

    def shard_path(self, name: str, shard_id: int) -> Path:
        """Where shard ``shard_id`` of served graph ``name`` lives."""
        return self.root / _safe_name(name) / f"shard-{shard_id:05d}{SNAPSHOT_SUFFIX}"

    def has(self, name: str) -> bool:
        """``True`` when any snapshot exists for ``name`` (graph or shards)."""
        directory = self.root / _safe_name(name)
        return directory.is_dir() and any(directory.glob(f"*{SNAPSHOT_SUFFIX}"))

    def names(self) -> List[str]:
        """Served names that have at least one snapshot on disk."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and any(entry.glob(f"*{SNAPSHOT_SUFFIX}"))
        )

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def _count(self, counter: str, amount: int = 1) -> None:
        with self._counters_lock:
            self._counters[counter] += amount

    def counters_snapshot(self) -> Dict[str, int]:
        """A consistent copy of the store counters."""
        with self._counters_lock:
            return dict(self._counters)

    def summary(self) -> Dict[str, object]:
        """The JSON-friendly store block for ``/stats`` and ``/healthz``."""
        return {
            "root": str(self.root),
            "snapshots": self.names(),
            "counters": self.counters_snapshot(),
        }

    # ------------------------------------------------------------------
    # attach / persist
    # ------------------------------------------------------------------
    def _try_attach(
        self,
        path: Path,
        graph: LabeledGraph,
        config: Optional[SearchConfig],
        engine_kwargs: Dict[str, object],
    ) -> Optional[BCCEngine]:
        """Attach ``graph`` to the snapshot at ``path``, or ``None``.

        Distinguishes the two failure classes in the counters: ``invalid``
        (missing/corrupted/version-skewed file — :class:`StoreError` from
        open) and ``mismatches`` (valid snapshot of a different graph).
        Both fall back to ``None`` so callers rebuild; neither raises.
        """
        if not path.is_file():
            return None
        try:
            snapshot = Snapshot(path)
        except StoreError:
            self._count("invalid")
            return None
        if not snapshot.matches(graph):
            snapshot.close()
            self._count("mismatches")
            return None
        engine = attach_engine(graph, snapshot, config, **engine_kwargs)
        self._count("attaches")
        return engine

    def attach_or_build(
        self,
        name: str,
        graph: LabeledGraph,
        config: Optional[SearchConfig] = None,
        **engine_kwargs,
    ) -> Tuple[BCCEngine, str]:
        """A ready engine for ``graph``, from disk when possible.

        Returns ``(engine, mode)`` with ``mode`` one of ``"attached"``
        (snapshot hit: no freeze, no peel) or ``"built"`` (miss: normal
        prepare + index build, then persisted so the next attach hits).
        """
        path = self.graph_path(name)
        engine = self._try_attach(path, graph, config, engine_kwargs)
        if engine is not None:
            return engine, "attached"
        engine = BCCEngine(graph, config, **engine_kwargs).prepare()
        self._count("builds")
        persist_engine(engine, path, butterfly_pairs=self.butterfly_pairs)
        self._count("persists")
        return engine, "built"

    def try_attach_shard(
        self,
        name: str,
        shard_id: int,
        graph: LabeledGraph,
        config: Optional[SearchConfig] = None,
        **engine_kwargs,
    ) -> Optional[BCCEngine]:
        """Attach a shard subgraph to its persisted snapshot, or ``None``."""
        return self._try_attach(
            self.shard_path(name, shard_id), graph, config, engine_kwargs
        )

    def persist_shard(self, name: str, shard_id: int, engine: BCCEngine) -> Path:
        """Persist a built shard engine so the next page-in attaches."""
        path = self.shard_path(name, shard_id)
        persist_engine(engine, path, butterfly_pairs=self.butterfly_pairs)
        self._count("persists")
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SnapshotStore({str(self.root)!r})"
