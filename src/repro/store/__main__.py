"""``python -m repro.store`` — build / inspect / verify snapshot stores.

Three subcommands, JSON to stdout, non-zero exit on any failure::

    python -m repro.store build <dataset> <dir> [--name N] [--seed S] [--sharded]
    python -m repro.store inspect <dir> [--name N]
    python -m repro.store verify <dir> [--name N] [--deep --dataset D --seed S]

``build`` generates a registered dataset and persists its snapshot(s)
under the store root (per-shard files with ``--sharded``); ``inspect``
prints each snapshot's header — versions, fingerprint, checksums, segment
sizes; ``verify`` re-opens every snapshot, which re-validates magic,
format version and every CRC, and with ``--deep`` additionally
regenerates the dataset and checks the graph fingerprint still matches.
The example and the CI store job drive exactly these entry points.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.exceptions import ReproError
from repro.store.snapshot import Snapshot
from repro.store.store import SNAPSHOT_SUFFIX, SnapshotStore


def _emit(payload: object) -> None:
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def _dataset_graph(dataset: str, seed: int):
    from repro.datasets.registry import load_dataset

    bundle = load_dataset(dataset, seed=seed)
    return getattr(bundle, "graph", bundle)


def _snapshot_paths(store: SnapshotStore, name: Optional[str]) -> List[str]:
    names = [name] if name is not None else store.names()
    paths: List[str] = []
    for entry in names:
        directory = store.root / entry
        if not directory.is_dir():
            raise ReproError(f"{directory}: no snapshots for {entry!r}")
        paths.extend(
            str(path) for path in sorted(directory.glob(f"*{SNAPSHOT_SUFFIX}"))
        )
    if not paths:
        raise ReproError(f"{store.root}: no snapshots found")
    return paths


def _cmd_build(args: argparse.Namespace) -> int:
    store = SnapshotStore(args.root)
    graph = _dataset_graph(args.dataset, args.seed)
    name = args.name if args.name is not None else args.dataset
    if args.sharded:
        from repro.serving.sharded import ShardedBCCEngine

        engine = ShardedBCCEngine(graph, store=store, store_key=name)
        for shard_id in range(engine.shard_count()):
            engine.shard_engine(shard_id)  # builds + persists each shard
        written = [str(store.shard_path(name, i)) for i in range(engine.shard_count())]
    else:
        from repro.api.engine import BCCEngine
        from repro.store.snapshot import persist_engine

        engine = BCCEngine(graph).prepare()
        info = persist_engine(engine, store.graph_path(name))
        written = [str(info["path"])]
    _emit(
        {
            "command": "build",
            "dataset": args.dataset,
            "seed": args.seed,
            "name": name,
            "sharded": args.sharded,
            "vertices": graph.num_vertices(),
            "edges": graph.num_edges(),
            "written": written,
            "store": store.summary(),
        }
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    store = SnapshotStore(args.root)
    documents = []
    for path in _snapshot_paths(store, args.name):
        with Snapshot(path) as snapshot:
            documents.append(snapshot.describe())
    _emit({"command": "inspect", "root": str(store.root), "snapshots": documents})
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    store = SnapshotStore(args.root)
    results = []
    failures = 0
    live_graph = None
    if args.deep:
        if args.dataset is None:
            raise ReproError("--deep verification needs --dataset (and --seed)")
        live_graph = _dataset_graph(args.dataset, args.seed)
    for path in _snapshot_paths(store, args.name):
        entry = {"path": path, "ok": True}
        try:
            with Snapshot(path) as snapshot:
                entry["format_version"] = snapshot.header.get("format_version")
                entry["graph"] = dict(snapshot.fingerprint)
                # Deep mode checks the monolithic snapshot against the
                # regenerated dataset; shard snapshots describe subgraphs
                # the CLI cannot regenerate, so they get structure-only.
                if live_graph is not None and path.endswith(
                    f"graph{SNAPSHOT_SUFFIX}"
                ):
                    reason = snapshot.mismatch_reason(live_graph)
                    if reason is not None:
                        entry["ok"] = False
                        entry["error"] = f"fingerprint mismatch: {reason}"
        except ReproError as exc:
            entry["ok"] = False
            entry["error"] = str(exc)
        if not entry["ok"]:
            failures += 1
        results.append(entry)
    _emit(
        {
            "command": "verify",
            "root": str(store.root),
            "ok": failures == 0,
            "failures": failures,
            "snapshots": results,
        }
    )
    return 0 if failures == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Build, inspect and verify persistent index snapshots.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="generate a dataset and persist it")
    build.add_argument("dataset", help="registered dataset name (see repro.datasets)")
    build.add_argument("root", help="store root directory")
    build.add_argument("--name", default=None, help="served name (default: dataset)")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument(
        "--sharded",
        action="store_true",
        help="persist one snapshot per connected-component shard",
    )
    build.set_defaults(func=_cmd_build)

    inspect = commands.add_parser("inspect", help="print snapshot headers")
    inspect.add_argument("root", help="store root directory")
    inspect.add_argument("--name", default=None, help="inspect one served name only")
    inspect.set_defaults(func=_cmd_inspect)

    verify = commands.add_parser("verify", help="re-validate snapshot checksums")
    verify.add_argument("root", help="store root directory")
    verify.add_argument("--name", default=None, help="verify one served name only")
    verify.add_argument(
        "--deep",
        action="store_true",
        help="also regenerate --dataset/--seed and check the fingerprint",
    )
    verify.add_argument("--dataset", default=None)
    verify.add_argument("--seed", type=int, default=0)
    verify.set_defaults(func=_cmd_verify)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
