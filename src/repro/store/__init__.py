"""Persistent index store: snapshot files, mmap attach, attach-or-build.

The store turns cold starts from rebuild storms into millisecond
attaches: a :class:`SnapshotWriter` persists everything a prepared
:class:`~repro.api.BCCEngine` computes (CSR arrays, interner orders,
coreness, BCindex butterfly tables) into one checksummed little-endian
file, :class:`Snapshot` maps it back zero-copy through ``mmap``, and
:class:`SnapshotStore` gives the serving layer (``GraphDirectory``,
``ShardedBCCEngine``) the attach-or-build contract plus per-shard spill
for bounded-memory serving.

See the README's "Persistent store" section for the format layout and the
``python -m repro.store`` CLI for build/inspect/verify tooling.
"""

from repro.store.format import FORMAT_VERSION, MAGIC, graph_fingerprint
from repro.store.snapshot import (
    Snapshot,
    SnapshotWriter,
    StoredBCIndex,
    attach_engine,
    persist_engine,
)
from repro.store.store import SNAPSHOT_SUFFIX, STORE_COUNTER_NAMES, SnapshotStore

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "SNAPSHOT_SUFFIX",
    "STORE_COUNTER_NAMES",
    "Snapshot",
    "SnapshotStore",
    "SnapshotWriter",
    "StoredBCIndex",
    "attach_engine",
    "graph_fingerprint",
    "persist_engine",
]
