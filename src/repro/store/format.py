"""The on-disk snapshot format: header codec, segments, checksums.

A snapshot is one file holding everything a prepared engine computes from a
graph — the CSR adjacency, per-id labels, graph coreness, the BCindex's
label-group coreness and its butterfly-degree tables — as raw little-endian
integer arrays behind a JSON header, laid out so the arrays can be attached
zero-copy through ``mmap`` + ``memoryview.cast``:

====================  ====================================================
bytes                 contents
====================  ====================================================
``0 .. 8``            magic ``b"BCCSNAP1"``
``8 .. 16``           header length (uint64, little-endian)
``16 .. 20``          CRC-32 of the header JSON (uint32, little-endian)
``20 .. 24``          zero padding
``24 ..``             header JSON (UTF-8), then zero padding to 16 bytes
then, per segment     raw little-endian array bytes, 16-byte aligned
====================  ====================================================

The header is self-describing JSON: the format version, the graph
fingerprint used to decide whether a live graph may attach, the interner's
vertex and label orders (vertices must be JSON scalars — ``str`` or
non-bool ``int`` — so ids round-trip exactly), and a segment table naming
each array's typecode, element count, byte offset and CRC-32.  Every
structural defect — wrong magic, version skew, truncation, a checksum
mismatch — raises :class:`repro.exceptions.StoreError` with a message
naming the file and the failing part; a valid snapshot of a *different*
graph is a :class:`repro.exceptions.SnapshotMismatchError` at attach time.

Integers are stored little-endian (``typecode`` ``"q"`` = int64, ``"i"`` =
int32).  On little-endian hosts — every platform this library targets —
reads are zero-copy casts of the mapped file; on a big-endian host the
helpers fall back to a byteswapping copy, so snapshots stay portable at the
cost of the zero-copy property.
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from array import array
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import StoreError
from repro.graph.labeled_graph import LabeledGraph

#: First 8 bytes of every snapshot file.
MAGIC = b"BCCSNAP1"

#: Bump on any incompatible layout change; readers reject other versions.
FORMAT_VERSION = 1

#: File prefix: magic, header length, header CRC-32, 4 bytes padding.
_PREFIX = struct.Struct("<8sQI4x")

#: Segment (and header) payloads start on this alignment, so int64 casts
#: of the mapped file are always aligned.
ALIGNMENT = 16

#: Typecode -> element size of the integer array types the format uses.
ITEMSIZES = {"q": 8, "i": 4}

_LITTLE_ENDIAN = sys.byteorder == "little"


def crc32(data: bytes) -> int:
    """The unsigned CRC-32 the format stamps on headers and segments."""
    return zlib.crc32(data) & 0xFFFFFFFF


def aligned(offset: int) -> int:
    """``offset`` rounded up to the segment alignment."""
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def array_to_bytes(values: array) -> bytes:
    """The little-endian byte image of an integer array (any host order)."""
    if _LITTLE_ENDIAN:
        return values.tobytes()
    swapped = array(values.typecode, values)
    swapped.byteswap()
    return swapped.tobytes()


def view_segment(buffer: memoryview, typecode: str) -> Sequence[int]:
    """An int-typed view of little-endian segment bytes.

    Zero-copy ``memoryview.cast`` on little-endian hosts; a byteswapping
    ``array`` copy on big-endian ones (correctness over zero-copy there).
    """
    if typecode not in ITEMSIZES:
        raise StoreError(f"unknown segment typecode {typecode!r}")
    if _LITTLE_ENDIAN:
        return buffer.cast(typecode)
    copied = array(typecode)
    copied.frombytes(bytes(buffer))
    copied.byteswap()
    return copied


def require_scalar(value: object, what: str) -> object:
    """Validate that ``value`` survives a JSON round-trip identically.

    The header stores the interner's vertex and label orders as JSON, so
    only scalars whose identity JSON preserves are allowed: ``str`` and
    non-bool ``int`` (labels may additionally be ``None``).  Anything else
    — tuples, floats, custom objects — raises :class:`StoreError` at write
    time instead of attaching a silently different graph later.
    """
    if isinstance(value, str):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    if value is None and what == "label":
        return value
    raise StoreError(
        f"snapshot {what}s must be JSON scalars (str or int), "
        f"got {type(value).__name__}: {value!r}"
    )


@dataclass(frozen=True)
class SegmentInfo:
    """One row of the header's segment table."""

    name: str
    typecode: str
    count: int
    offset: int
    crc: int

    @property
    def nbytes(self) -> int:
        return self.count * ITEMSIZES[self.typecode]

    def to_header(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "typecode": self.typecode,
            "count": self.count,
            "offset": self.offset,
            "crc32": self.crc,
        }

    @classmethod
    def from_header(cls, entry: Dict[str, object], path: str) -> "SegmentInfo":
        try:
            info = cls(
                name=str(entry["name"]),
                typecode=str(entry["typecode"]),
                count=int(entry["count"]),  # type: ignore[arg-type]
                offset=int(entry["offset"]),  # type: ignore[arg-type]
                crc=int(entry["crc32"]),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"{path}: malformed segment table entry: {exc}")
        if info.typecode not in ITEMSIZES:
            raise StoreError(
                f"{path}: segment {info.name!r} has unknown typecode "
                f"{info.typecode!r}"
            )
        if info.count < 0 or info.offset < 0:
            raise StoreError(f"{path}: segment {info.name!r} has negative geometry")
        return info


def graph_fingerprint(graph: LabeledGraph) -> Dict[str, object]:
    """The quick content fingerprint a snapshot stores about its graph.

    Cheap enough to recompute at every attach (one C-speed pass over the
    adjacency), strong enough to catch anything short of an adversarial
    collision: vertex/edge counts, the mutation version, a CRC of the
    degree sequence *in iteration order* (which also pins the freeze's id
    assignment) and a CRC of the label histogram.  The attach check
    additionally compares the stored vertex order to the live graph's —
    see :meth:`repro.store.Snapshot.matches`.
    """
    adj = graph._adj  # friend access, as in CSRGraph.freeze
    degrees = array("q", map(len, adj.values()))
    histogram = sorted(
        (str(label), count) for label, count in graph.label_counts().items()
    )
    return {
        "num_vertices": graph.num_vertices(),
        "num_edges": graph.num_edges(),
        "graph_version": graph.version(),
        "degree_crc": crc32(array_to_bytes(degrees)),
        "label_histogram_crc": crc32(
            json.dumps(histogram, sort_keys=True).encode("utf-8")
        ),
    }


def encode_prefix_and_header(header: Dict[str, object]) -> Tuple[bytes, int]:
    """Serialize the file prefix + padded header; returns (bytes, data_start).

    ``data_start`` is the aligned offset where the first segment's bytes
    begin — segment offsets in the header are relative to the file start,
    so the writer computes them against this value.
    """
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    prefix = _PREFIX.pack(MAGIC, len(blob), crc32(blob))
    data_start = aligned(_PREFIX.size + len(blob))
    padding = b"\x00" * (data_start - _PREFIX.size - len(blob))
    return prefix + blob + padding, data_start


def decode_header(buffer: memoryview, path: str) -> Tuple[Dict[str, object], int]:
    """Parse and validate the prefix + header; returns (header, data_start).

    Raises :class:`StoreError` for every structural defect: short file,
    wrong magic, format-version skew, header CRC mismatch, or a header
    that is not a JSON object.
    """
    if len(buffer) < _PREFIX.size:
        raise StoreError(
            f"{path}: truncated snapshot ({len(buffer)} bytes; "
            f"the header prefix alone needs {_PREFIX.size})"
        )
    magic, header_len, header_crc = _PREFIX.unpack_from(buffer, 0)
    if magic != MAGIC:
        raise StoreError(
            f"{path}: not a snapshot file (magic {magic!r} != {MAGIC!r})"
        )
    end = _PREFIX.size + header_len
    if end > len(buffer):
        raise StoreError(
            f"{path}: truncated snapshot header "
            f"(declares {header_len} bytes, file has {len(buffer) - _PREFIX.size})"
        )
    blob = bytes(buffer[_PREFIX.size : end])
    if crc32(blob) != header_crc:
        raise StoreError(f"{path}: header checksum mismatch (corrupted header)")
    try:
        header = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreError(f"{path}: header is not valid JSON: {exc}")
    if not isinstance(header, dict):
        raise StoreError(f"{path}: header must be a JSON object")
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise StoreError(
            f"{path}: snapshot format version {version!r} is not supported "
            f"(this build reads version {FORMAT_VERSION}); rebuild the "
            f"snapshot with `python -m repro.store build`"
        )
    return header, aligned(end)


def segments_from_header(
    header: Dict[str, object], data_size: int, path: str
) -> List[SegmentInfo]:
    """The validated segment table, bounds-checked against the data area.

    Segment offsets are relative to the start of the data area (the aligned
    byte right after the header), so the header can be serialized without a
    fixpoint over its own length; ``data_size`` is the number of bytes the
    file actually has after that point.
    """
    raw = header.get("segments")
    if not isinstance(raw, list):
        raise StoreError(f"{path}: header carries no segment table")
    segments = [SegmentInfo.from_header(entry, path) for entry in raw]
    for segment in segments:
        if segment.offset + segment.nbytes > data_size:
            raise StoreError(
                f"{path}: truncated snapshot — segment {segment.name!r} "
                f"needs data bytes up to {segment.offset + segment.nbytes} "
                f"but the file has only {data_size} after the header"
            )
    return segments
