"""Snapshot writer, mmap reader, and the engine attach path.

:class:`SnapshotWriter` serializes everything a prepared engine computes
from a graph — the CSR adjacency and per-id labels, the graph coreness,
the BCindex's label-group coreness and (optionally) its butterfly-degree
tables — into the one-file format of :mod:`repro.store.format`.

:class:`Snapshot` maps that file back read-only, validates every checksum
and bound at open, and hands out zero-copy integer views of the segments.
:func:`attach_engine` then turns a snapshot into a ready
:class:`~repro.api.BCCEngine` without re-freezing or re-peeling anything:
the mapped arrays are injected as the graph's frozen CSR snapshot
(through the storage-adopting :class:`~repro.graph.csr._FlatAdjacency`
constructor path) and a :class:`StoredBCIndex` replays the persisted
index instead of rebuilding it, so cold start is "attach and validate"
instead of "re-freeze and re-index".
"""

from __future__ import annotations

import mmap
import os
from array import array
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.api.config import SearchConfig
from repro.api.engine import BCCEngine
from repro.core.bc_index import BCIndex
from repro.exceptions import SnapshotMismatchError, StoreError
from repro.graph.csr import CSRGraph, VertexInterner
from repro.graph.labeled_graph import Label, LabeledGraph, Vertex
from repro.store.format import (
    FORMAT_VERSION,
    SegmentInfo,
    aligned,
    array_to_bytes,
    crc32,
    decode_header,
    encode_prefix_and_header,
    graph_fingerprint,
    require_scalar,
    segments_from_header,
    view_segment,
)

#: The core segments every snapshot carries, with their typecodes and the
#: expected element count as a function of (num_vertices, num_edges).
_CORE_SEGMENTS = {
    "offsets": ("q", lambda n, m: n + 1),
    "neighbors": ("i", lambda n, m: 2 * m),
    "labels": ("i", lambda n, m: n),
    "coreness": ("i", lambda n, m: n),
    "group_coreness": ("i", lambda n, m: n),
}

PathLike = Union[str, Path]


class SnapshotWriter:
    """Serialize a graph (and its BCindex) into one snapshot file.

    Parameters
    ----------
    path:
        Destination file.  The write is atomic: bytes go to a sibling
        ``*.tmp`` file which is ``os.replace``-d over ``path`` only once
        fully written, so a crashed writer never leaves a half snapshot
        where a reader expects a whole one.
    butterfly_pairs:
        Which butterfly-degree tables to persist: ``"all"`` (default —
        every distinct label pair, the right call for serving snapshots),
        ``"cached"`` (only the pairs the given index has already computed),
        or ``"none"`` (coreness only; attached engines compute butterfly
        tables lazily exactly as a fresh index would).
    """

    def __init__(self, path: PathLike, butterfly_pairs: str = "all") -> None:
        if butterfly_pairs not in ("all", "cached", "none"):
            raise StoreError(
                f"butterfly_pairs must be 'all', 'cached' or 'none', "
                f"got {butterfly_pairs!r}"
            )
        self.path = Path(path)
        self.butterfly_pairs = butterfly_pairs

    # ------------------------------------------------------------------
    def write(
        self,
        graph: LabeledGraph,
        index: Optional[BCIndex] = None,
        *,
        backend: str = "auto",
        groups=None,
    ) -> Dict[str, object]:
        """Write a snapshot of ``graph``; returns a summary dict.

        ``index`` is reused when given (built first if needed); otherwise a
        fresh :class:`BCIndex` is built — so persisting a prepared engine
        pays nothing beyond serialization (see
        :func:`persist_engine`).
        """
        csr = graph.freeze()
        interner = csr.interner
        vertices = [require_scalar(v, "vertex") for v in interner.vertices()]
        label_order = [
            require_scalar(interner.label_of(lid), "label")
            for lid in range(interner.num_labels())
        ]
        offs, nbrs = csr.adjacency_lists()
        if index is None:
            index = BCIndex(graph, build=True, backend=backend, groups=groups)
        elif not index.is_built():
            index.build()

        segments: List[Tuple[str, str, bytes]] = [
            ("offsets", "q", array_to_bytes(array("q", offs))),
            ("neighbors", "i", array_to_bytes(array("i", nbrs))),
            ("labels", "i", array_to_bytes(array("i", csr.labels))),
            ("coreness", "i", array_to_bytes(array("i", csr.coreness()))),
            (
                "group_coreness",
                "i",
                array_to_bytes(
                    array("i", (index.coreness(v) for v in interner.vertices()))
                ),
            ),
        ]
        pair_entries = self._butterfly_segments(graph, index, interner, segments)

        table: List[SegmentInfo] = []
        cursor = 0
        for name, typecode, blob in segments:
            cursor = aligned(cursor)
            table.append(
                SegmentInfo(
                    name=name,
                    typecode=typecode,
                    count=len(blob) // (8 if typecode == "q" else 4),
                    offset=cursor,
                    crc=crc32(blob),
                )
            )
            cursor += len(blob)

        header = {
            "format_version": FORMAT_VERSION,
            "graph": graph_fingerprint(graph),
            "vertices": vertices,
            "labels": label_order,
            "segments": [info.to_header() for info in table],
            "butterfly_pairs": pair_entries,
        }
        prefix, _ = encode_prefix_and_header(header)

        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as out:
            out.write(prefix)
            written = 0
            for info, (_, _, blob) in zip(table, segments):
                out.write(b"\x00" * (info.offset - written))
                out.write(blob)
                written = info.offset + len(blob)
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, self.path)
        return {
            "path": str(self.path),
            "bytes": os.path.getsize(self.path),
            "num_vertices": graph.num_vertices(),
            "num_edges": graph.num_edges(),
            "segments": len(table),
            "butterfly_pairs": len(pair_entries),
        }

    # ------------------------------------------------------------------
    def _butterfly_segments(
        self,
        graph: LabeledGraph,
        index: BCIndex,
        interner: VertexInterner,
        segments: List[Tuple[str, str, bytes]],
    ) -> List[Dict[str, object]]:
        """Append one ``(ids, chi)`` segment pair per persisted label pair."""
        if self.butterfly_pairs == "none":
            return []
        by_str = {str(label): label for label in graph.labels()}
        if self.butterfly_pairs == "all":
            names = sorted(by_str)
            keys = [
                (names[i], names[j])
                for i in range(len(names))
                for j in range(i + 1, len(names))
            ]
        else:  # "cached"
            keys = [key for key in index.cached_label_pairs() if key[0] != key[1]]
        entries: List[Dict[str, object]] = []
        for pair_id, (a, b) in enumerate(keys):
            degrees = index.butterfly_degrees_for(by_str[a], by_str[b])
            rows = sorted((interner.id_of(v), chi) for v, chi in degrees.items())
            ids = array("i", (vid for vid, _ in rows))
            chi = array("q", (value for _, value in rows))
            ids_name = f"bf_ids_{pair_id}"
            chi_name = f"bf_chi_{pair_id}"
            segments.append((ids_name, "i", array_to_bytes(ids)))
            segments.append((chi_name, "q", array_to_bytes(chi)))
            entries.append(
                {
                    "key": [a, b],
                    "ids": ids_name,
                    "chi": chi_name,
                    "max_chi": index.max_butterfly_degree(by_str[a], by_str[b]),
                }
            )
        return entries


class Snapshot:
    """A snapshot file mapped read-only, fully validated at open.

    Opening checks everything structural — magic, format version, header
    checksum, segment bounds, every segment's CRC-32, and that the core
    segments' element counts agree with the recorded vertex/edge counts —
    raising :class:`StoreError` with the file name and the failing part.
    Whether the snapshot describes a *particular live graph* is the
    separate, per-attach question answered by :meth:`matches` /
    :meth:`require_match`.

    Segment accessors return zero-copy ``memoryview`` casts of the mapped
    file (on little-endian hosts; see :mod:`repro.store.format`), so an
    attached engine reads index data straight from the page cache.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = str(path)
        try:
            self._file = open(path, "rb")
        except OSError as exc:
            raise StoreError(f"{path}: cannot open snapshot: {exc}")
        try:
            self._mmap = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as exc:
            self._file.close()
            raise StoreError(f"{path}: cannot map snapshot: {exc}")
        self._buffer = memoryview(self._mmap)
        self._views: Dict[str, Sequence[int]] = {}
        self._csr: Optional[CSRGraph] = None
        try:
            self._validate()
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        self.header, self._data_start = decode_header(self._buffer, self.path)
        data_size = len(self._buffer) - self._data_start
        table = segments_from_header(self.header, data_size, self.path)
        self._segments: Dict[str, SegmentInfo] = {info.name: info for info in table}
        for info in table:
            if crc32(bytes(self._segment_bytes(info))) != info.crc:
                raise StoreError(
                    f"{self.path}: segment {info.name!r} checksum mismatch "
                    f"(corrupted snapshot)"
                )
        graph_block = self.header.get("graph")
        if not isinstance(graph_block, dict):
            raise StoreError(f"{self.path}: header carries no graph fingerprint")
        self.fingerprint: Dict[str, object] = graph_block
        vertices = self.header.get("vertices")
        labels = self.header.get("labels")
        if not isinstance(vertices, list) or not isinstance(labels, list):
            raise StoreError(f"{self.path}: header carries no vertex/label order")
        self._vertices: List[Vertex] = vertices
        self._label_order: List[Label] = labels
        n = int(graph_block.get("num_vertices", -1))
        m = int(graph_block.get("num_edges", -1))
        if len(vertices) != n:
            raise StoreError(
                f"{self.path}: header lists {len(vertices)} vertices but the "
                f"fingerprint says {n}"
            )
        for name, (typecode, count_of) in _CORE_SEGMENTS.items():
            info = self._segments.get(name)
            if info is None:
                raise StoreError(f"{self.path}: segment {name!r} is missing")
            if info.typecode != typecode or info.count != count_of(n, m):
                raise StoreError(
                    f"{self.path}: segment {name!r} has wrong shape "
                    f"({info.typecode!r} x {info.count}, expected "
                    f"{typecode!r} x {count_of(n, m)})"
                )
        self._pairs: Dict[Tuple[str, str], Dict[str, object]] = {}
        for entry in self.header.get("butterfly_pairs", []):
            try:
                a, b = entry["key"]
                ids_name, chi_name = entry["ids"], entry["chi"]
            except (KeyError, TypeError, ValueError) as exc:
                raise StoreError(f"{self.path}: malformed butterfly pair entry: {exc}")
            for name in (ids_name, chi_name):
                if name not in self._segments:
                    raise StoreError(
                        f"{self.path}: butterfly pair ({a!r}, {b!r}) references "
                        f"missing segment {name!r}"
                    )
            if self._segments[ids_name].count != self._segments[chi_name].count:
                raise StoreError(
                    f"{self.path}: butterfly pair ({a!r}, {b!r}) has "
                    f"mismatched ids/chi segment lengths"
                )
            self._pairs[(str(a), str(b))] = entry

    def _segment_bytes(self, info: SegmentInfo) -> memoryview:
        start = self._data_start + info.offset
        return self._buffer[start : start + info.nbytes]

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def segment(self, name: str) -> Sequence[int]:
        """An int-typed (zero-copy where possible) view of segment ``name``."""
        view = self._views.get(name)
        if view is None:
            info = self._segments.get(name)
            if info is None:
                raise StoreError(f"{self.path}: no segment named {name!r}")
            view = view_segment(self._segment_bytes(info), info.typecode)
            self._views[name] = view
        return view

    def segment_table(self) -> List[SegmentInfo]:
        """The segment table in file order (for inspect tooling)."""
        return sorted(self._segments.values(), key=lambda info: info.offset)

    def vertices(self) -> List[Vertex]:
        """The stored vertex order (id ``i`` is ``vertices()[i]``)."""
        return self._vertices

    def labels(self) -> List[Label]:
        """The stored label order (label id ``i`` is ``labels()[i]``)."""
        return self._label_order

    def butterfly_pairs(self) -> List[Tuple[str, str]]:
        """The persisted butterfly label pairs (sorted ``_pair_key`` form)."""
        return sorted(self._pairs)

    def butterfly_table(
        self, key: Tuple[str, str]
    ) -> Optional[Tuple[Sequence[int], Sequence[int], int]]:
        """``(ids, chi, max_chi)`` for a persisted pair, or ``None``."""
        entry = self._pairs.get(key)
        if entry is None:
            return None
        return (
            self.segment(str(entry["ids"])),
            self.segment(str(entry["chi"])),
            int(entry["max_chi"]),  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    # graph matching
    # ------------------------------------------------------------------
    def mismatch_reason(self, graph: LabeledGraph) -> Optional[str]:
        """Why ``graph`` may not attach to this snapshot (``None`` = it may).

        Compares the stored fingerprint field by field against the live
        graph's, then the stored vertex order against the live iteration
        order — the strongest cheap check available, since id assignment is
        exactly iteration order.
        """
        live = graph_fingerprint(graph)
        for field in sorted(live):
            if self.fingerprint.get(field) != live[field]:
                return (
                    f"{field} differs (snapshot {self.fingerprint.get(field)!r}, "
                    f"live graph {live[field]!r})"
                )
        if self._vertices != list(graph._adj):  # friend access, as in freeze
            return "vertex order differs"
        return None

    def matches(self, graph: LabeledGraph) -> bool:
        """``True`` when ``graph`` is the graph this snapshot was written from."""
        return self.mismatch_reason(graph) is None

    def require_match(self, graph: LabeledGraph) -> None:
        """Raise :class:`SnapshotMismatchError` unless :meth:`matches`."""
        reason = self.mismatch_reason(graph)
        if reason is not None:
            raise SnapshotMismatchError(
                f"{self.path}: snapshot does not describe this graph: {reason}"
            )

    # ------------------------------------------------------------------
    # attach products
    # ------------------------------------------------------------------
    def as_csr_graph(self) -> CSRGraph:
        """The stored CSR snapshot, backed by the mapped file (cached).

        The interner is rebuilt from the stored vertex/label orders (cheap:
        identity detection skips the dict for dense-int graphs) and the
        offset/neighbour/label arrays are *adopted* — not copied — through
        the storage-injection constructor path.  The graph coreness is
        materialized eagerly (one C-speed ``list()``), so the first k-core
        query runs an O(n) filter instead of a peel.
        """
        if self._csr is None:
            self._csr = CSRGraph.attach(
                self._vertices,
                self._label_order,
                self.segment("offsets"),
                self.segment("neighbors"),
                self.segment("labels"),
                coreness=self.segment("coreness"),
            )
        return self._csr

    def describe(self) -> Dict[str, object]:
        """A JSON-friendly summary (CLI ``inspect`` / gateway payloads)."""
        return {
            "path": self.path,
            "format_version": self.header.get("format_version"),
            "bytes": len(self._buffer),
            "graph": dict(self.fingerprint),
            "labels": [str(label) for label in self._label_order],
            "butterfly_pairs": [list(key) for key in self.butterfly_pairs()],
            "segments": [
                {
                    "name": info.name,
                    "typecode": info.typecode,
                    "count": info.count,
                    "bytes": info.nbytes,
                    "crc32": info.crc,
                }
                for info in self.segment_table()
            ],
        }

    def close(self) -> None:
        """Release the mapping (only safe once no attached engine uses it)."""
        self._views.clear()
        self._csr = None
        self._buffer.release()
        self._mmap.close()
        self._file.close()

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n = self.fingerprint.get("num_vertices")
        m = self.fingerprint.get("num_edges")
        return f"Snapshot({self.path!r}, |V|={n}, |E|={m})"


class StoredBCIndex(BCIndex):
    """A :class:`BCIndex` whose build step replays a snapshot.

    ``build()`` materializes the label-group coreness from the mapped
    ``group_coreness`` segment (a zip at C speed) instead of running one
    core decomposition per label, and :meth:`butterfly_degrees_for` fills
    the per-pair cache from the persisted tables when present — falling
    back to the normal lazy computation for pairs the snapshot does not
    carry, so a ``butterfly_pairs="none"`` snapshot still serves every
    method correctly.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        snapshot: Snapshot,
        backend: str = "auto",
        groups=None,
    ) -> None:
        super().__init__(graph, build=False, backend=backend, groups=groups)
        self._snapshot = snapshot

    def build(self) -> None:
        stored = self._snapshot.segment("group_coreness")
        self._coreness = dict(zip(self._snapshot.vertices(), stored))
        self._max_coreness = max(stored, default=0)

    def butterfly_degrees_for(
        self, left_label: Label, right_label: Label
    ) -> Dict[Vertex, int]:
        key = self._pair_key(left_label, right_label)
        if key not in self._butterfly_cache:
            table = self._snapshot.butterfly_table(key)
            if table is not None:
                ids, chi, max_chi = table
                vertex_of = self._snapshot.vertices().__getitem__
                self._butterfly_cache[key] = {
                    vertex_of(vid): value for vid, value in zip(ids, chi)
                }
                self._max_butterfly_cache[key] = max_chi
        return super().butterfly_degrees_for(left_label, right_label)


def attach_engine(
    graph: LabeledGraph,
    snapshot: Snapshot,
    config: Optional[SearchConfig] = None,
    **engine_kwargs,
) -> BCCEngine:
    """A prepared :class:`BCCEngine` serving ``graph`` from ``snapshot``.

    Validates the match (raising :class:`SnapshotMismatchError` on any
    disagreement), installs the mapped CSR arrays as the graph's frozen
    snapshot — so ``prepare()`` freezes nothing — and wires in a
    :class:`StoredBCIndex` so ``ensure_index()`` replays the persisted
    coreness instead of re-peeling.  ``engine_kwargs`` pass through to
    :class:`BCCEngine` (result cache size/policy, fault plan).
    """
    snapshot.require_match(graph)
    cfg = config if config is not None else SearchConfig()
    # Friend access, mirroring LabeledGraph.freeze's own cache fill: the
    # mapped CSR becomes the graph's current frozen snapshot.
    graph._frozen = snapshot.as_csr_graph()
    graph._frozen_version = graph.version()
    engine = BCCEngine(
        graph,
        cfg,
        index=StoredBCIndex(graph, snapshot, backend=cfg.backend),
        **engine_kwargs,
    )
    return engine.prepare()


def persist_engine(
    engine: BCCEngine, path: PathLike, *, butterfly_pairs: str = "all"
) -> Dict[str, object]:
    """Write a snapshot of a (prepared) engine's graph + index to ``path``.

    Reuses the engine's own BCindex and label-group cache, so persisting a
    warm engine pays only serialization; on a cold engine this triggers the
    one prepare + index build the snapshot then saves everyone else.
    """
    engine.prepare()
    index = engine.ensure_index()
    writer = SnapshotWriter(path, butterfly_pairs=butterfly_pairs)
    return writer.write(
        engine.graph, index, backend=engine.config.backend, groups=engine.group
    )
