"""Public serving API: the prepared engine, typed configs and the registry.

This package is the library's front door for query serving:

>>> from repro.api import BCCEngine, Query, SearchConfig
>>> engine = BCCEngine(bundle.graph, SearchConfig(b=1)).prepare()
>>> response = engine.search(Query("lp-bcc", (q_left, q_right)))
>>> response.status, sorted(response.vertices)[:3]  # doctest: +SKIP

The engine prepares once (CSR freeze, cached label groups, lazily built
BCindex) and serves many queries; the legacy free functions
(``online_bcc_search`` & co.) remain as thin one-shot wrappers over it.
"""

from repro.api.config import BACKENDS, SearchConfig
from repro.api.engine import ON_ERROR_POLICIES, BCCEngine
from repro.api.oneshot import one_shot_search
from repro.api.query import (
    STATUS_EMPTY,
    STATUS_ERROR,
    STATUS_OK,
    BatchQuery,
    Query,
    SearchResponse,
)
from repro.api.registry import (
    MethodSpec,
    get_method,
    method_names,
    register_method,
    registered_methods,
    unregister_method,
)

# Import for the registration side effect so the built-in methods are
# available as soon as the package is imported.
from repro.api import methods as _builtin_methods  # noqa: F401

__all__ = [
    "BACKENDS",
    "BCCEngine",
    "BatchQuery",
    "MethodSpec",
    "ON_ERROR_POLICIES",
    "Query",
    "STATUS_EMPTY",
    "STATUS_ERROR",
    "STATUS_OK",
    "SearchConfig",
    "SearchResponse",
    "get_method",
    "method_names",
    "one_shot_search",
    "register_method",
    "registered_methods",
    "unregister_method",
]
