"""Typed queries and the uniform search response.

Every method — the three BCC searches, the multi-labeled mBCC search and the
CTC/PSA baselines — is invoked through a :class:`Query` and answers with a
:class:`SearchResponse`, so callers (and the eval harness) handle one shape
instead of five result types and bare-``None`` conventions:

* ``status == "ok"`` — a community was found; ``result`` holds the
  method-native result object (``BCCResult``, ``MBCCResult``, ...) and
  ``vertices`` its member set.
* ``status == "empty"`` — no community satisfies the constraints; ``reason``
  carries a machine-readable code (``repro.exceptions.REASON_*``) instead of
  the bare ``None`` the legacy free functions return.
* ``status == "error"`` — the query itself was bad (unknown vertex, wrong
  arity, unknown method).  ``search`` still raises for these; only
  ``search_many(on_error="return")`` produces error responses, so one
  malformed query no longer aborts a whole batch.  ``reason`` carries the
  machine-readable code and ``error`` the exception message.

Malformed queries (unknown vertices, equal labels, bad parameters) still
raise from ``search`` — they are caller errors, not empty answers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.api.config import SearchConfig
from repro.eval.instrumentation import SearchInstrumentation
from repro.exceptions import (
    REASON_NO_COMMUNITY,
    EmptyCommunityError,
    QueryError,
)
from repro.graph.labeled_graph import LabeledGraph, Vertex

#: ``SearchResponse.status`` values.
STATUS_OK = "ok"
STATUS_EMPTY = "empty"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class Query:
    """One community-search request: a method name plus its query vertices.

    ``method`` is resolved through the method registry (canonical names,
    paper display names and aliases all work — ``"lp-bcc"`` and ``"LP-BCC"``
    are the same method).  ``config`` optionally overrides the engine's base
    configuration for this query only.
    """

    method: str
    vertices: Tuple[Vertex, ...]
    config: Optional[SearchConfig] = None

    def __post_init__(self) -> None:
        if not self.method or not isinstance(self.method, str):
            raise QueryError("query method must be a non-empty string")
        if isinstance(self.vertices, str):
            # tuple("Toronto") would silently become one query per character.
            raise QueryError(
                "vertices must be a sequence of vertices, not a bare string"
            )
        object.__setattr__(self, "vertices", tuple(self.vertices))
        if not self.vertices:
            raise QueryError("query must name at least one vertex")

    def as_pair(self) -> Tuple[Vertex, Vertex]:
        """Return the (q_left, q_right) pair; raise for other arities."""
        if len(self.vertices) != 2:
            raise QueryError(
                f"method {self.method!r} expects exactly two query vertices, "
                f"got {len(self.vertices)}"
            )
        return (self.vertices[0], self.vertices[1])

    def to_payload(self) -> Dict[str, object]:
        """This query as the HTTP gateway's JSON wire payload.

        Delegates to :mod:`repro.server.protocol` (imported lazily — the
        codec imports this module); vertices must be JSON scalars or the
        codec refuses with ``ProtocolError``.
        """
        from repro.server.protocol import encode_query

        return encode_query(self)

    @classmethod
    def from_payload(cls, payload: object) -> "Query":
        """Restore a query from its wire payload (exact round-trip)."""
        from repro.server.protocol import decode_query

        return decode_query(payload)


@dataclass(frozen=True)
class BatchQuery:
    """A batch of queries served over one warm engine snapshot.

    ``config`` (when given) is the shared override applied to every member
    query that does not carry its own.
    """

    queries: Tuple[Query, ...]
    config: Optional[SearchConfig] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "queries", tuple(self.queries))
        for index, member in enumerate(self.queries):
            # Catch non-Query members here, where the offending index is
            # known, instead of failing later inside search_many with an
            # opaque AttributeError.
            if not isinstance(member, Query):
                raise QueryError(
                    f"batch member {index} is not a Query: {member!r}"
                )

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def to_payload(self) -> Dict[str, object]:
        """This batch as the HTTP gateway's JSON wire payload."""
        from repro.server.protocol import encode_batch

        return encode_batch(self)

    @classmethod
    def from_payload(cls, payload: object) -> "BatchQuery":
        """Restore a batch from its wire payload (exact round-trip)."""
        from repro.server.protocol import decode_batch

        return decode_batch(payload)


@dataclass
class SearchResponse:
    """The uniform answer to one :class:`Query`.

    Attributes
    ----------
    method:
        Canonical registry name of the method that ran (the caller-supplied
        name when the query failed before method resolution).
    query:
        The query vertices.
    status:
        ``"ok"``, ``"empty"`` or ``"error"`` (the latter only from
        ``search_many(on_error="return")``).
    result:
        The method-native result object (``BCCResult``, ``MBCCResult``,
        ``CTCResult``, ``PSAResult``) — ``None`` when empty or errored.
    reason:
        Machine-readable empty-/error-reason code (``None`` when
        ``status == "ok"``).
    error:
        The underlying exception message for ``status == "error"``
        responses; ``None`` otherwise.
    vertices:
        Community member set (empty set when no community exists).
    timings:
        ``total_seconds`` for the call, split into ``query_seconds`` and
        ``index_build_seconds`` (non-zero only on the call that triggered the
        engine's lazy BCindex build).
    instrumentation:
        The per-search counters recorded by the algorithm.
    degraded:
        ``True`` only on answers replayed from a stale cache because no
        healthy replica could serve the query live (the HTTP gateway's
        degraded mode).  A degraded answer was correct when computed but
        may not reflect the current graph; engines never set it.
    """

    method: str
    query: Tuple[Vertex, ...]
    status: str
    result: Optional[object] = None
    reason: Optional[str] = None
    error: Optional[str] = None
    vertices: Set[Vertex] = field(default_factory=set)
    timings: Dict[str, float] = field(default_factory=dict)
    instrumentation: Optional[SearchInstrumentation] = None
    degraded: bool = False

    @property
    def found(self) -> bool:
        """``True`` when a community was found."""
        return self.status == STATUS_OK

    @property
    def community(self) -> Optional[LabeledGraph]:
        """The community subgraph, when the method produced one."""
        return getattr(self.result, "community", None)

    @property
    def iterations(self) -> int:
        """Peeling iterations performed by the search (0 when unknown/empty)."""
        return int(getattr(self.result, "iterations", 0))

    @property
    def query_distance(self) -> float:
        """``dist(H, Q)`` of the returned community.

        ``math.inf`` for empty/error responses: a response without a
        community is infinitely far from the query, not a *perfect* answer —
        returning ``0.0`` here used to silently deflate harness averages.
        """
        if not self.found:
            return math.inf
        return float(getattr(self.result, "query_distance", 0.0))

    def to_payload(self) -> Dict[str, object]:
        """The observable surface of this response as a wire payload.

        ``query_distance`` and ``iterations`` are materialized (they are
        derived properties in-process) and ``math.inf`` is encoded as the
        string ``"inf"`` — never as non-standard JSON ``Infinity``.  The
        method-native ``result`` object and the instrumentation stay
        server-side.
        """
        from repro.server.protocol import encode_response

        return encode_response(self)

    @classmethod
    def from_payload(cls, payload: object) -> "SearchResponse":
        """Restore a response whose observable fields equal the served one."""
        from repro.server.protocol import decode_response

        return decode_response(payload)

    def raise_for_empty(self) -> "SearchResponse":
        """Raise :class:`EmptyCommunityError` when empty; return self otherwise.

        Error responses (from ``search_many(on_error="return")``) re-raise
        the caller error as :class:`QueryError` instead.
        """
        if self.status == STATUS_ERROR:
            raise QueryError(
                self.error
                or f"query {self.query!r} failed ({self.reason or 'error'})"
            )
        if not self.found:
            raise EmptyCommunityError(
                f"method {self.method!r} found no community for {self.query!r}",
                reason=self.reason or REASON_NO_COMMUNITY,
            )
        return self
