"""The search-method registry: one decorator instead of an if/elif chain.

Every search method is a :class:`MethodSpec` — a runner with the uniform
signature ``runner(engine, query, config, instrumentation) -> result`` plus
metadata (paper display name, kind, aliases).  Both :class:`repro.api.BCCEngine`
and the eval harness dispatch through :func:`get_method`, and the harness's
``METHOD_NAMES`` derives from :func:`method_names`, so adding a method to the
whole system is one ``@register_method`` decorator:

>>> @register_method("my-bcc", display="My-BCC", kind="bcc")
... def _run_my_bcc(engine, query, config, instrumentation):
...     ...

Lookup is case-insensitive over canonical names, display names and aliases.
The built-in methods live in :mod:`repro.api.methods` and are registered
lazily on first lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import UnknownMethodError

#: Method kinds: paper baselines, two-labeled BCC searches, multi-labeled.
KINDS = ("baseline", "bcc", "multilabel")


@dataclass(frozen=True)
class MethodSpec:
    """A registered search method: runner plus dispatch metadata.

    Attributes
    ----------
    name:
        Canonical kebab-case registry name (``"lp-bcc"``).
    display:
        The name used in the paper's figures (``"LP-BCC"``).
    kind:
        ``"baseline"``, ``"bcc"`` or ``"multilabel"``.
    runner:
        ``runner(engine, query, config, instrumentation)`` returning the
        method-native result object, or raising
        :class:`repro.exceptions.EmptyCommunityError` when no community
        exists.
    aliases:
        Extra lookup names (all lookups are case-insensitive anyway).
    needs_index:
        Whether the runner consumes the engine's lazily built BCindex.
    symmetric_k:
        Whether the harness's single symmetric ``k`` override (Fig. 8 sweeps)
        applies to this method; CTC opts out and always uses the maximum
        trussness, as in the paper's experiments.
    resolves_k_locally:
        Whether unset core parameters are resolved inside a search-time
        candidate graph rather than from the input graph's label groups
        (L2P-BCC); ``BCCEngine.explain`` reports them as deferred instead of
        computing graph-global defaults the search would never use.
    multilabel_method:
        Canonical name of the method that answers multi-label query tuples
        on this method's behalf in ``evaluate_multilabel`` (the paper runs
        every BCC variant through the mBCC framework); ``None`` means the
        method handles the tuple itself.
    missing_vertex_is_empty:
        Historical contract of the label-agnostic baselines: a query naming
        an unknown vertex means "no community" rather than an error.  The
        engine itself always raises; the legacy one-shot wrappers and the
        eval harness consult this flag to translate the error back.
    description:
        One-line human-readable summary (shown by ``BCCEngine.explain``).
    """

    name: str
    display: str
    kind: str
    runner: Callable
    aliases: Tuple[str, ...] = ()
    needs_index: bool = False
    symmetric_k: bool = True
    resolves_k_locally: bool = False
    multilabel_method: Optional[str] = None
    missing_vertex_is_empty: bool = False
    description: str = ""

    def lookup_keys(self) -> Tuple[str, ...]:
        """Every lower-cased key this spec answers to."""
        keys = [self.name.lower(), self.display.lower()]
        keys.extend(alias.lower() for alias in self.aliases)
        return tuple(dict.fromkeys(keys))


# Canonical name -> spec, in registration order (drives METHOD_NAMES order).
_REGISTRY: Dict[str, MethodSpec] = {}
# Lower-cased lookup key -> canonical name.
_LOOKUP: Dict[str, str] = {}
_BUILTINS_LOADED = False


def register_method(
    name: str,
    *,
    display: Optional[str] = None,
    kind: str = "bcc",
    aliases: Sequence[str] = (),
    needs_index: bool = False,
    symmetric_k: bool = True,
    resolves_k_locally: bool = False,
    multilabel_method: Optional[str] = None,
    missing_vertex_is_empty: bool = False,
    description: str = "",
) -> Callable[[Callable], Callable]:
    """Return a decorator registering a runner under ``name``.

    The decorated function is returned unchanged, so implementations remain
    plain callables that can be invoked (and tested) directly.
    """
    if kind not in KINDS:
        raise ValueError(f"unknown method kind {kind!r}; known: {KINDS}")

    def decorator(func: Callable) -> Callable:
        spec = MethodSpec(
            name=name,
            display=display if display is not None else name,
            kind=kind,
            runner=func,
            aliases=tuple(aliases),
            needs_index=needs_index,
            symmetric_k=symmetric_k,
            resolves_k_locally=resolves_k_locally,
            multilabel_method=multilabel_method,
            missing_vertex_is_empty=missing_vertex_is_empty,
            description=description,
        )
        if spec.name in _REGISTRY:
            raise ValueError(f"method {spec.name!r} is already registered")
        for key in spec.lookup_keys():
            owner = _LOOKUP.get(key)
            if owner is not None and owner != spec.name:
                raise ValueError(
                    f"lookup key {key!r} already belongs to method {owner!r}"
                )
        _REGISTRY[spec.name] = spec
        for key in spec.lookup_keys():
            _LOOKUP[key] = spec.name
        return func

    return decorator


def unregister_method(name: str) -> None:
    """Remove a registered method (primarily for tests of custom methods).

    Accepts any name :func:`get_method` resolves — canonical, display or
    alias.
    """
    canonical = _LOOKUP.get(str(name).lower())
    spec = _REGISTRY.pop(canonical, None) if canonical is not None else None
    if spec is None:
        raise UnknownMethodError(name, known=method_names())
    for key, owner in list(_LOOKUP.items()):
        if owner == spec.name:
            del _LOOKUP[key]


def _ensure_builtins() -> None:
    """Import :mod:`repro.api.methods` once so the built-ins are registered.

    Normally a no-op — ``repro.api.__init__`` imports the builtins eagerly —
    but kept as a safety net for direct ``repro.api.registry`` consumers.
    The flag is set only after the import succeeds, so a failed import is
    re-raised on the next lookup instead of surfacing as UnknownMethodError.
    """
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        import repro.api.methods  # noqa: F401  (registration side effect)

        _BUILTINS_LOADED = True


def get_method(name: str) -> MethodSpec:
    """Resolve a method by canonical name, display name or alias.

    Raises :class:`UnknownMethodError` (a ``ValueError``) for unknown names.
    """
    _ensure_builtins()
    key = str(name).lower()
    canonical = _LOOKUP.get(key)
    if canonical is None:
        raise UnknownMethodError(name, known=method_names())
    return _REGISTRY[canonical]


def registered_methods(
    kinds: Optional[Iterable[str]] = None,
) -> List[MethodSpec]:
    """Return registered specs in registration order, optionally by kind."""
    _ensure_builtins()
    wanted = None if kinds is None else set(kinds)
    return [
        spec
        for spec in _REGISTRY.values()
        if wanted is None or spec.kind in wanted
    ]


def method_names(kinds: Optional[Iterable[str]] = None) -> List[str]:
    """Return display names (the paper's figure names) in registration order."""
    return [spec.display for spec in registered_methods(kinds)]
