"""Built-in method registrations: the paper's five methods plus mBCC.

Each adapter binds a core implementation (``run_*``) to the uniform registry
signature ``(engine, query, config, instrumentation)``, translating
:class:`repro.api.config.SearchConfig` fields into the algorithm's native
parameters and threading the engine's prepared state (cached label-group
subgraphs, the lazily built BCindex) into the call.

Registration order is the paper's figure order — it defines
``repro.eval.harness.METHOD_NAMES``.
"""

from __future__ import annotations

from repro.api.registry import register_method
from repro.baselines.ctc import run_ctc
from repro.baselines.psa import run_psa
from repro.core.local_search import run_l2p_bcc
from repro.core.lp_bcc import run_lp_bcc
from repro.core.multilabel import run_mbcc
from repro.core.online_bcc import run_online_bcc


@register_method(
    "psa",
    display="PSA",
    kind="baseline",
    missing_vertex_is_empty=True,
    description="progressive minimum k-core search (label-agnostic baseline)",
)
def _run_psa(engine, query, config, instrumentation):
    return run_psa(
        engine.graph,
        list(query.vertices),
        k=config.k,
        size_budget=config.size_budget,
        shrink_rounds=config.shrink_rounds,
        instrumentation=instrumentation,
    )


@register_method(
    "ctc",
    display="CTC",
    kind="baseline",
    symmetric_k=False,
    missing_vertex_is_empty=True,
    description="closest truss community search (label-agnostic baseline)",
)
def _run_ctc(engine, query, config, instrumentation):
    # config.k pins the trussness; unset means the maximum trussness
    # containing the query.  The harness's symmetric-k sweeps of Fig. 8
    # deliberately skip CTC (symmetric_k=False), as in the paper.
    return run_ctc(
        engine.graph,
        list(query.vertices),
        k=config.k,
        bulk_deletion=config.bulk_deletion,
        max_iterations=config.max_iterations,
        instrumentation=instrumentation,
    )


@register_method(
    "online-bcc",
    display="Online-BCC",
    kind="bcc",
    aliases=("online",),
    multilabel_method="mbcc",
    description="greedy 2-approximation search (Algorithm 1)",
)
def _run_online_bcc(engine, query, config, instrumentation):
    q_left, q_right = query.as_pair()
    return run_online_bcc(
        engine.graph,
        q_left,
        q_right,
        k1=config.effective_k1(),
        k2=config.effective_k2(),
        b=config.b,
        bulk_deletion=config.bulk_deletion,
        max_iterations=config.max_iterations,
        instrumentation=instrumentation,
        use_fast_path=config.fast_path,
        backend=config.backend,
        groups=engine.group,
    )


@register_method(
    "lp-bcc",
    display="LP-BCC",
    kind="bcc",
    aliases=("lp",),
    multilabel_method="mbcc",
    description="Online-BCC with fast distances and leader-pair maintenance "
    "(Algorithms 5-7)",
)
def _run_lp_bcc(engine, query, config, instrumentation):
    q_left, q_right = query.as_pair()
    return run_lp_bcc(
        engine.graph,
        q_left,
        q_right,
        k1=config.effective_k1(),
        k2=config.effective_k2(),
        b=config.b,
        bulk_deletion=config.bulk_deletion,
        rho=config.rho,
        max_iterations=config.max_iterations,
        instrumentation=instrumentation,
        backend=config.backend,
        groups=engine.group,
    )


@register_method(
    "l2p-bcc",
    display="L2P-BCC",
    kind="bcc",
    aliases=("l2p",),
    needs_index=True,
    resolves_k_locally=True,
    multilabel_method="mbcc",
    description="index-based local search (Algorithm 8, BCindex-backed)",
)
def _run_l2p_bcc(engine, query, config, instrumentation):
    q_left, q_right = query.as_pair()
    return run_l2p_bcc(
        engine.graph,
        q_left,
        q_right,
        k1=config.effective_k1(),
        k2=config.effective_k2(),
        b=config.b,
        index=engine.ensure_index(),
        eta=config.eta,
        path_config=config.path_config,
        rho=config.rho,
        max_iterations=config.max_iterations,
        instrumentation=instrumentation,
        backend=config.backend,
        groups=engine.group,
    )


@register_method(
    "mbcc",
    display="mBCC",
    kind="multilabel",
    aliases=("multi-bcc",),
    description="multi-labeled BCC search over m label groups (Algorithm 9)",
)
def _run_mbcc(engine, query, config, instrumentation):
    core_parameters = (
        None if config.core_parameters is None else list(config.core_parameters)
    )
    return run_mbcc(
        engine.graph,
        list(query.vertices),
        core_parameters=core_parameters,
        b=config.b,
        bulk_deletion=config.bulk_deletion,
        max_iterations=config.max_iterations,
        instrumentation=instrumentation,
        backend=config.backend,
        groups=engine.group,
    )
