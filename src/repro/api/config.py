"""Typed, frozen search configuration shared by every registered method.

:class:`SearchConfig` replaces the per-function keyword sprawl of the legacy
entry points (``use_fast_path=...`` here, ``rho=...`` there) with one
validated, immutable object.  An engine holds a base config; callers derive
variants with :meth:`SearchConfig.replace` (e.g. a parameter sweep changing
only ``k``), and per-query overrides ride on :class:`repro.api.query.Query`.

Not every field applies to every method — each registered runner reads the
fields its algorithm defines (the butterfly parameter ``b`` means nothing to
the label-agnostic CTC baseline, ``size_budget`` only to PSA) and ignores the
rest, so one config can drive a whole workload.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.baselines.psa import DEFAULT_SHRINK_ROUNDS, DEFAULT_SIZE_BUDGET
from repro.core.local_search import DEFAULT_CANDIDATE_SIZE
from repro.core.lp_bcc import DEFAULT_RHO
from repro.core.path_weight import PathWeightConfig
from repro.exceptions import QueryError

#: Kernel substrates accepted by :attr:`SearchConfig.backend`.
#: ``"process"`` selects the CSR kernels plus the multi-process batch
#: transport (:mod:`repro.parallel`): a single ``search`` runs the CSR
#: fast path in-process, while ``search_many`` scatter-gathers the batch
#: across shared-memory worker processes.
BACKENDS = ("auto", "object", "csr", "process")


@dataclass(frozen=True)
class SearchConfig:
    """Immutable parameters of a community search.

    Attributes
    ----------
    k1, k2:
        Core parameters of the two BCC label groups; ``None`` defaults to the
        query vertices' label-group coreness (Section 3.5).
    k:
        Single core-parameter override: BCC methods read it as
        ``k1 = k2 = k`` when ``k1``/``k2`` are unset, PSA as its core
        parameter, CTC as a pinned trussness (unset means the maximum
        trussness containing the query).  The harness's symmetric sweeps
        (Fig. 8 varies one ``k`` "due to the symmetry property") skip CTC —
        its ``MethodSpec.symmetric_k`` is ``False`` — matching the paper's
        experiments, where CTC always runs at maximum trussness.
    b:
        Butterfly-degree requirement of the leader pair (Def. 4).
    bulk_deletion:
        Remove every farthest vertex per peeling iteration (the paper's
        experimental setting) instead of a single one.
    rho:
        Leader search radius of Algorithm 6 (LP-BCC / L2P-BCC).
    backend:
        Kernel substrate: ``"auto"`` (default), ``"object"``, ``"csr"`` or
        ``"process"``.  ``"process"`` behaves like ``"csr"`` inside one
        process and additionally opts ``search_many`` batches into the
        shared-memory worker pool of :mod:`repro.parallel`.
    max_iterations:
        Optional safety cap on peeling iterations.
    fast_path:
        Run Online-BCC's query-distance sweep on a frozen CSR snapshot of
        ``G0`` with a dead-id mask (identical results, faster substrate).
    eta:
        Candidate-graph size threshold of L2P-BCC (Algorithm 8).
    path_config:
        γ1/γ2 weights of the butterfly-core path weight (Def. 6).
    core_parameters:
        Optional per-query ``k_i`` tuple for the multi-labeled mBCC search.
    size_budget, shrink_rounds:
        Expansion / shrinking budgets of the PSA baseline.
    deadline_ms:
        Optional serving deadline (wall-clock milliseconds).  Enforced at
        the serving seams that can abandon a stalled call — each
        ``search_many`` row and each HTTP gateway request — not inside the
        kernels themselves; an expired deadline becomes a position-aligned
        ``status="error"`` row with reason ``deadline-exceeded`` (HTTP 504
        through the gateway).  It never changes *what* a query answers,
        only how long a caller will wait, so it is excluded from result
        cache keys.
    """

    k1: Optional[int] = None
    k2: Optional[int] = None
    k: Optional[int] = None
    b: int = 1
    bulk_deletion: bool = True
    rho: int = DEFAULT_RHO
    backend: str = "auto"
    max_iterations: Optional[int] = None
    fast_path: bool = True
    eta: int = DEFAULT_CANDIDATE_SIZE
    path_config: PathWeightConfig = PathWeightConfig()
    core_parameters: Optional[Tuple[int, ...]] = None
    size_budget: int = DEFAULT_SIZE_BUDGET
    shrink_rounds: int = DEFAULT_SHRINK_ROUNDS
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("k1", "k2", "k"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise QueryError(f"core parameter {name} must be non-negative")
        if self.b < 0:
            raise QueryError("butterfly parameter b must be non-negative")
        if self.rho < 0:
            raise QueryError("leader search radius rho must be non-negative")
        if self.backend not in BACKENDS:
            raise QueryError(f"unknown backend {self.backend!r}; known: {BACKENDS}")
        if self.max_iterations is not None and self.max_iterations < 0:
            raise QueryError("max_iterations must be non-negative or None")
        # Zero budgets are legal degenerate settings the algorithms define
        # (eta=0: the candidate is the seed path; size_budget=0: skip the
        # PSA expansion), matching what the legacy entry points accepted.
        if self.eta < 0:
            raise QueryError("candidate size threshold eta must be non-negative")
        if self.size_budget < 0:
            raise QueryError("size_budget must be non-negative")
        if self.shrink_rounds < 0:
            raise QueryError("shrink_rounds must be non-negative")
        if self.deadline_ms is not None and not self.deadline_ms > 0:
            raise QueryError("deadline_ms must be positive or None")
        if self.core_parameters is not None:
            object.__setattr__(self, "core_parameters", tuple(self.core_parameters))
            if any(value < 0 for value in self.core_parameters):
                raise QueryError("core_parameters must be non-negative")

    def replace(self, **changes: object) -> "SearchConfig":
        """Return a copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    def cache_key(self) -> Tuple[object, ...]:
        """Return a hashable tuple of every field, for result-cache keys.

        Two equal configs produce the same key, so ``BCCEngine``'s
        per-engine result cache can key one entry on
        ``(method, vertices, resolved config, graph version)``.  Explicit
        field order (rather than relying on ``__hash__``) keeps the key
        stable and self-describing.  ``deadline_ms`` is excluded: a
        deadline bounds the wait, not the answer, so the same query under
        different deadlines must share one cache entry.
        """
        return tuple(
            getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name != "deadline_ms"
        )

    def effective_k1(self) -> Optional[int]:
        """``k1``, falling back to the symmetric ``k`` override."""
        return self.k1 if self.k1 is not None else self.k

    def effective_k2(self) -> Optional[int]:
        """``k2``, falling back to the symmetric ``k`` override."""
        return self.k2 if self.k2 is not None else self.k
