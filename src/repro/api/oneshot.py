"""The one-shot delegation path shared by the legacy free functions.

Every legacy entry point (``online_bcc_search``, ``ctc_search``, ...) is the
same move: build a :class:`SearchConfig` from its keyword arguments, serve a
single :class:`Query` on a throwaway :class:`BCCEngine`, and hand back the
method-native result (``None`` when no community exists).  This helper keeps
that policy in one place.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.api.config import SearchConfig
from repro.api.engine import BCCEngine
from repro.api.query import Query
from repro.api.registry import get_method
from repro.core.bc_index import BCIndex
from repro.eval.instrumentation import SearchInstrumentation
from repro.exceptions import VertexNotFoundError
from repro.graph.labeled_graph import LabeledGraph, Vertex


def one_shot_search(
    method: str,
    graph: LabeledGraph,
    vertices: Iterable[Vertex],
    config: SearchConfig,
    instrumentation: Optional[SearchInstrumentation] = None,
    index: Optional[BCIndex] = None,
):
    """Serve one query on a throwaway engine, returning the native result.

    Methods registered with ``missing_vertex_is_empty`` (the CTC/PSA
    baselines' historical contract) translate an unknown *query* vertex into
    ``None`` here; the engine itself always raises.  The query vertices are
    validated explicitly up front — a :class:`VertexNotFoundError` raised
    from deep inside a runner (a non-query vertex, i.e. an implementation
    bug) propagates instead of being silently swallowed as "no community".
    """
    spec = get_method(method)
    engine = BCCEngine(graph, config, index=index)
    query = Query(method=spec.name, vertices=tuple(vertices))
    if spec.missing_vertex_is_empty:
        try:
            engine.graph.require_vertices(query.vertices)
        except VertexNotFoundError:
            return None
    response = engine.search(query, instrumentation=instrumentation)
    return response.result
