"""The prepared, query-serving engine — the library's single front door.

``BCCEngine`` binds a labeled graph to a :class:`SearchConfig` and serves
queries through the method registry.  Unlike the legacy one-shot functions it
*prepares once and serves many*:

* :meth:`prepare` freezes the graph's CSR snapshot (version-cached, so every
  fast-path kernel on the unmutated graph reuses it);
* :meth:`group` caches the label-induced subgraphs that Algorithm 2 rebuilds
  per query on the one-shot path — each group (and the warm CSR snapshot its
  own kernels freeze) is built once per engine;
* :meth:`ensure_index` lazily builds one reusable BCindex for the
  index-based methods, timing the build separately from query time;
* repeated queries are answered from a bounded LRU result cache keyed on
  ``(method, vertices, resolved config, graph version)`` — bypassable per
  call with ``use_cache=False`` and sized via ``result_cache_size``.

The engine is safe to serve from multiple threads: each fill-once cache
(CSR freeze, label groups, BCindex) is guarded by its own lock with a
double-checked fill, so a ``search_many(..., max_workers=8)`` batch still
performs each preparation step exactly once, and counter increments are
lock-protected.  Mutating the *graph* while queries are in flight remains
undefined; mutations between calls are detected per serving call and
invalidate every cache exactly once (counted in the ``"invalidations"``
counter).

:meth:`counters_snapshot` records how often each preparation step actually
ran, so tests (and operators) can assert the amortization: a ``search_many``
batch over an unmutated graph performs the CSR freeze and the BCindex build
at most once.  The legacy ``counters`` attribute remains as a *read-only*
live view — it used to be a public mutable dict that callers read and wrote
without the lock; take :meth:`counters_snapshot` for a consistent copy.

The result cache accepts an optional *admission policy* (see
:mod:`repro.serving.policies`): an object with ``now()``, ``admit(method,
response)``, ``expired(method, age_seconds)`` and ``method_budget(method)``
hooks layered onto the LRU — TTL expiry turns stale hits into misses, and a
per-method size budget evicts only that method's entries.

The engine answers "no community" with a ``SearchResponse`` of
``status="empty"`` and a machine-readable ``reason``.  Malformed queries
raise from :meth:`search` (:class:`repro.exceptions.QueryError` and friends);
:meth:`search_many` additionally offers ``on_error="return"``, which converts
a per-query failure into a position-aligned ``status="error"`` response
instead of aborting the batch.
"""

from __future__ import annotations

import contextvars
import dataclasses
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from types import MappingProxyType
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.api.config import SearchConfig
from repro.obs.tracing import span as obs_span
from repro.api.query import (
    STATUS_EMPTY,
    STATUS_ERROR,
    STATUS_OK,
    BatchQuery,
    Query,
    SearchResponse,
)
from repro.api.registry import MethodSpec, get_method
from repro.core.bc_index import BCIndex
from repro.core.bcc_model import BCCParameters, resolve_query_labels
from repro.core.multilabel import resolve_mbcc_parameters, validate_mbcc_query
from repro.eval.instrumentation import SearchInstrumentation
from repro.exceptions import (
    REASON_DEADLINE_EXCEEDED,
    REASON_INVALID_QUERY,
    REASON_MISSING_VERTEX,
    REASON_UNAVAILABLE,
    REASON_UNKNOWN_METHOD,
    REASON_WORKER_CRASHED,
    AllReplicasEjectedError,
    DeadlineExceededError,
    EmptyCommunityError,
    QueryError,
    UnknownMethodError,
    VertexNotFoundError,
    WorkerCrashedError,
)
from repro.graph.labeled_graph import Label, LabeledGraph

#: ``search_many`` error policies.
ON_ERROR_POLICIES = ("raise", "return")

#: Default capacity of the per-engine LRU result cache (entries).
DEFAULT_RESULT_CACHE_SIZE = 128

#: Every counter an engine maintains, in reporting order.  The serving
#: layer uses this to report an all-zero snapshot for shards whose engine
#: was never built (the laziness proof: untouched shards did no work).
ENGINE_COUNTER_NAMES = (
    "prepare_calls",
    "csr_freezes",
    "index_builds",
    "group_builds",
    "searches",
    "invalidations",
    "result_cache_hits",
    "result_cache_misses",
    "result_cache_expirations",
    "result_cache_rejections",
    "result_cache_budget_evictions",
    "process_batches",
    "process_tasks",
    "process_fallbacks",
)

#: Edge count below which ``backend="auto"`` keeps batches on the threaded
#: path: under it the per-task wire marshalling and worker startup dominate
#: any kernel parallelism, and the small-graph test workloads stay exactly
#: on the code path they always exercised.
PROCESS_AUTO_MIN_EDGES = 2048

# One warning per process when the process backend falls back to threads
# (satellite: unavailable shared memory must degrade loudly-once, not
# per-batch); the "process_fallbacks" counter keeps the full tally.
_PROCESS_FALLBACK_WARNED = False


def _warn_process_fallback_once(reason: str) -> None:
    global _PROCESS_FALLBACK_WARNED
    if _PROCESS_FALLBACK_WARNED:
        return
    _PROCESS_FALLBACK_WARNED = True
    warnings.warn(
        f"process backend unavailable ({reason}); serving batches on the "
        "threaded path instead",
        RuntimeWarning,
        stacklevel=4,
    )


def _error_message(exc: BaseException) -> str:
    """The exception message, unwrapping KeyError's repr-quoting."""
    # VertexNotFoundError subclasses KeyError, whose str() wraps the message
    # in quotes; the original message is always the first argument.
    if exc.args and isinstance(exc.args[0], str):
        return exc.args[0]
    return str(exc)


def is_caller_error(query: Query, exc: Exception) -> bool:
    """Whether ``exc`` is the *query's* fault (eligible for ``"return"``).

    A :class:`VertexNotFoundError` naming a vertex that is not a query
    vertex escaped from deep inside a runner — an implementation bug, not a
    malformed query — and must propagate, never be converted into a
    per-query error row.  Shared by :class:`BCCEngine` and the sharded
    serving layer so both apply one rule.
    """
    if isinstance(exc, VertexNotFoundError):
        return getattr(exc, "vertex", None) in query.vertices
    return isinstance(exc, QueryError)


def reason_for_error(exc: Exception) -> str:
    """The machine-readable ``REASON_*`` code for a failed query.

    Shared by :func:`error_response_for` and the HTTP gateway (which maps
    the reason onwards to an HTTP status through
    :data:`repro.exceptions.HTTP_STATUS_BY_REASON`): deadline expiries map
    to ``deadline-exceeded`` (504), an all-replicas-ejected outage to
    ``unavailable`` (503), caller errors to their 4xx reasons.
    """
    if isinstance(exc, VertexNotFoundError):
        return REASON_MISSING_VERTEX
    if isinstance(exc, UnknownMethodError):
        return REASON_UNKNOWN_METHOD
    if isinstance(exc, DeadlineExceededError):
        return REASON_DEADLINE_EXCEEDED
    if isinstance(exc, AllReplicasEjectedError):
        return REASON_UNAVAILABLE
    if isinstance(exc, WorkerCrashedError):
        return REASON_WORKER_CRASHED
    return REASON_INVALID_QUERY


def error_response_for(query: Query, exc: Exception) -> SearchResponse:
    """A position-aligned ``status="error"`` response for a failed query."""
    return SearchResponse(
        method=query.method,
        query=query.vertices,
        status=STATUS_ERROR,
        reason=reason_for_error(exc),
        error=_error_message(exc),
    )


def run_with_deadline(fn, seconds: Optional[float], what: str = "call"):
    """Run ``fn`` but give up after ``seconds`` of wall clock.

    ``None`` runs inline with zero overhead — the no-deadline path is
    unchanged.  Otherwise ``fn`` runs on a fresh *daemon* thread and the
    caller waits at most ``seconds``: on timeout,
    :class:`~repro.exceptions.DeadlineExceededError` is raised and the
    worker is abandoned (a pure-Python kernel cannot be preempted
    mid-peel; the daemon flag keeps an eternally stalled worker from
    blocking process exit).  Exceptions from ``fn`` re-raise in the caller
    unchanged.  This is the one enforcement primitive behind
    ``search_many``'s per-row deadlines and the HTTP gateway's per-request
    deadline.
    """
    if seconds is None:
        return fn()
    box: Dict[str, object] = {}
    done = threading.Event()

    def work() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # re-raised in the caller below
            box["error"] = exc
        finally:
            done.set()

    # A fresh thread does not inherit contextvars, so the caller's trace
    # context is carried across explicitly: spans opened inside ``fn``
    # land under the caller's active span.  On timeout the worker keeps
    # running and its deepest span never finishes — the retained trace
    # shows exactly which span consumed the budget, marked "unfinished".
    with obs_span("deadline", what=what, budget_ms=seconds * 1000.0) as timed:
        context = contextvars.copy_context()
        worker = threading.Thread(
            target=context.run, args=(work,), name=f"deadline:{what}", daemon=True
        )
        worker.start()
        if not done.wait(timeout=max(0.0, seconds)):
            if timed is not None:
                timed.annotate(exceeded=True)
            raise DeadlineExceededError(deadline_ms=seconds * 1000.0)
    if "error" in box:
        raise box["error"]  # type: ignore[misc]
    return box["value"]


def deadline_seconds_for(*configs: Optional[SearchConfig]) -> Optional[float]:
    """The effective deadline (seconds) from a config-precedence chain.

    The first non-``None`` config wins *entirely* — exactly the precedence
    ``search`` applies to every other field — so a call-level config
    without a deadline deliberately clears a batch-level one.
    """
    for config in configs:
        if config is not None:
            deadline_ms = getattr(config, "deadline_ms", None)
            return None if deadline_ms is None else deadline_ms / 1000.0
    return None


def serve_batch(
    engine,
    queries: Union[BatchQuery, Iterable[Query]],
    *,
    config: Optional[SearchConfig],
    instrumentation: Optional[SearchInstrumentation],
    on_error: str,
    max_workers: int,
    use_cache: bool,
    prepare=None,
) -> List[SearchResponse]:
    """The one batch-dispatch implementation behind every ``search_many``.

    ``engine`` is anything with the uniform ``search(query, *, config,
    instrumentation, use_cache)`` method — the monolithic
    :class:`BCCEngine` and the sharded router both delegate here, so batch
    semantics (validation, config precedence, per-query error policy,
    position-aligned thread-pool dispatch) can never diverge between them.
    ``prepare`` optionally runs once before a non-empty batch is served.

    **Deadlines.**  When a row's effective config carries ``deadline_ms``,
    that row is served through :func:`run_with_deadline`: its budget runs
    from the moment the row is dispatched, and a row that exhausts it
    becomes a position-aligned ``status="error"`` /
    ``reason="deadline-exceeded"`` row under ``on_error="return"`` (or
    raises :class:`~repro.exceptions.DeadlineExceededError` under
    ``"raise"``).  One stalled query therefore costs the batch at most its
    own budget instead of wedging every row behind it; rows without a
    deadline are served inline, unchanged.
    """
    if on_error not in ON_ERROR_POLICIES:
        raise QueryError(
            f"unknown on_error policy {on_error!r}; known: {ON_ERROR_POLICIES}"
        )
    if max_workers < 1:
        raise QueryError("max_workers must be >= 1")
    batch_config: Optional[SearchConfig] = None
    if isinstance(queries, BatchQuery):
        batch_config = queries.config
        items: List[Query] = list(queries)  # validated in __post_init__
    else:
        # Same member-type guarantee as BatchQuery.__post_init__ for plain
        # iterables: one validator owns the rule, and a bad member fails up
        # front with its index, not deep inside a worker with an opaque
        # AttributeError.
        items = list(BatchQuery(queries=tuple(queries)).queries)
    if items and prepare is not None:
        prepare()

    def effective_config(query: Query) -> Optional[SearchConfig]:
        if config is None and query.config is None:
            return batch_config
        return config

    engine_config = getattr(engine, "config", None)

    def serve(query: Query) -> SearchResponse:
        deadline = deadline_seconds_for(
            config, query.config, batch_config, engine_config
        )
        with obs_span("row", method=query.method):
            try:
                return run_with_deadline(
                    lambda: engine.search(
                        query,
                        config=effective_config(query),
                        instrumentation=instrumentation,
                        use_cache=use_cache,
                    ),
                    deadline,
                    what=f"row:{query.method}",
                )
            except DeadlineExceededError as exc:
                if on_error == "raise":
                    raise
                return error_response_for(query, exc)
            except (QueryError, VertexNotFoundError) as exc:
                if on_error == "raise" or not is_caller_error(query, exc):
                    raise
                return error_response_for(query, exc)

    with obs_span("batch", rows=len(items), transport="thread"):
        if max_workers > 1 and len(items) > 1:
            # Executor threads do not inherit contextvars; each row gets a
            # private copy of the caller's context so its "row" span joins
            # this batch's trace (a Context object is single-entry, hence
            # one copy per row, not one shared copy).
            contexts = [contextvars.copy_context() for _ in items]
            with ThreadPoolExecutor(
                max_workers=min(max_workers, len(items))
            ) as pool:
                # map() yields in submission order, so responses stay
                # position-aligned and an on_error="raise" failure surfaces
                # at its earliest position.
                return list(
                    pool.map(
                        lambda pair: pair[0].run(serve, pair[1]),
                        zip(contexts, items),
                    )
                )
        return [serve(query) for query in items]


@dataclasses.dataclass
class _CacheEntry:
    """One result-cache slot: the response plus what a policy needs.

    ``stamp`` is the policy clock's insertion time (0.0 without a policy —
    nothing ever reads it then), ``method`` the canonical method name so a
    per-method budget can evict its own entries without re-parsing keys.
    """

    response: SearchResponse
    method: str
    stamp: float


class BCCEngine:
    """A long-lived, thread-safe search engine over one labeled graph.

    Parameters
    ----------
    graph:
        The graph to serve, or any object exposing it as ``.graph`` (e.g. a
        :class:`repro.datasets.base.DatasetBundle`).
    config:
        Base :class:`SearchConfig`; per-query overrides ride on the query or
        the ``search(..., config=...)`` call.
    index:
        Optional pre-built :class:`BCIndex` to reuse; when omitted one is
        built lazily the first time an index-based method runs.
    result_cache_size:
        Capacity of the LRU result cache (0 disables it).  Cached responses
        are keyed on ``(method, vertices, resolved config, graph version)``
        and replayed with fresh timings; hits and misses are counted in
        the engine counters.
    result_cache_policy:
        Optional admission policy layered onto the LRU (see
        :mod:`repro.serving.policies`): ``admit`` can refuse to cache a
        response, ``expired`` turns a stale hit into a miss (the entry is
        evicted and counted in ``"result_cache_expirations"``), and
        ``method_budget`` caps how many entries one method may hold —
        exceeding the budget evicts that method's oldest entries only.
    fault_plan:
        Optional :class:`repro.server.faults.FaultPlan` (or any object with
        an ``on(site, **attrs)`` hook).  :meth:`search` invokes it at site
        ``"engine.search"`` with ``method``/``vertices`` attributes before
        running the query, so chaos tests can make this engine raise or
        stall on a deterministic schedule.  ``None`` (the default) costs
        nothing.

    The engine assumes a *serving* graph: searches never mutate it, and the
    caches stay warm across queries.  If the graph is mutated anyway, the
    engine detects the version change at the next serving call and
    transparently rebuilds its caches (mutating the graph while another
    thread is mid-search is not supported).
    """

    def __init__(
        self,
        graph: Union[LabeledGraph, object],
        config: Optional[SearchConfig] = None,
        index: Optional[BCIndex] = None,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        result_cache_policy: Optional[object] = None,
        fault_plan: Optional[object] = None,
    ) -> None:
        if not isinstance(graph, LabeledGraph):
            graph = getattr(graph, "graph", graph)
        if not isinstance(graph, LabeledGraph):
            raise TypeError(f"expected a LabeledGraph or bundle, got {type(graph)!r}")
        if result_cache_size < 0:
            raise ValueError("result_cache_size must be non-negative")
        self.graph: LabeledGraph = graph
        self.config: SearchConfig = config if config is not None else SearchConfig()
        self.fault_plan = fault_plan
        self._index: Optional[BCIndex] = index
        self._groups: Dict[Label, LabeledGraph] = {}
        self._graph_version: int = graph.version()
        self._prepared: bool = False
        self._index_build_seconds: float = 0.0
        # Per-thread attribution of index-build time: each query runs on one
        # thread, so only the query whose thread performed the build reports
        # a non-zero index_build_seconds — diffing the shared accumulator
        # would charge the build to every query overlapping it (and push
        # their query_seconds negative) under a threaded batch.
        self._tls = threading.local()
        self._result_cache_size: int = result_cache_size
        self._result_cache_policy = result_cache_policy
        self._result_cache: "OrderedDict[Tuple, _CacheEntry]" = OrderedDict()
        # Per-cache locks: each fill-once cache fills under its own lock via
        # a double-checked pattern, so concurrent serving threads perform
        # every preparation step exactly once.  Lock order (outermost first)
        # is index -> version -> groups; freeze / cache / counter locks are
        # leaves, never held while acquiring another lock.
        self._freeze_lock = threading.Lock()
        self._groups_lock = threading.Lock()
        self._index_lock = threading.Lock()
        self._version_lock = threading.Lock()
        self._cache_lock = threading.Lock()
        self._counters_lock = threading.Lock()
        # Lazy multi-process batch transport (backend="process").  The pool
        # lock only guards the slot; pool shutdown always happens outside
        # every engine lock because close() joins worker processes.
        self._pool_lock = threading.Lock()
        self._process_pool: Optional[object] = None
        self._counters: Dict[str, int] = {
            name: 0 for name in ENGINE_COUNTER_NAMES
        }

    @property
    def counters(self) -> Mapping[str, int]:
        """Deprecated live view of the engine counters (read-only).

        This used to be a public mutable dict that callers read — and could
        write — without the counters lock.  It is now a
        :class:`types.MappingProxyType`, so existing reads keep working but
        writes raise.  Prefer :meth:`counters_snapshot`, which takes the
        lock and returns a consistent point-in-time copy.
        """
        # Deliberately lock-free: a live read-only *view* cannot take a
        # snapshot by definition, and single-key reads of int values are
        # atomic under the GIL.  New code wants counters_snapshot().
        return MappingProxyType(self._counters)  # noqa: BCC001

    def counters_snapshot(self) -> Dict[str, int]:
        """Return a lock-protected, consistent copy of the engine counters.

        The copy is the caller's to keep or mutate; it never observes a
        torn multi-counter state from concurrent serving threads.
        """
        with self._counters_lock:
            return dict(self._counters)

    def _count(self, name: str, amount: int = 1) -> None:
        """Thread-safe counter increment (``+=`` on a dict slot is not)."""
        with self._counters_lock:
            self._counters[name] += amount

    # ------------------------------------------------------------------
    # prepared state
    # ------------------------------------------------------------------
    def _check_version(self) -> None:
        """Invalidate every cache when the underlying graph was mutated.

        Double-checked under the version lock so one mutation triggers
        exactly one invalidation no matter how many serving threads observe
        it; the rebuilds themselves then run once under their cache locks.
        """
        if self.graph.version() == self._graph_version:
            return
        stale_pool = None
        with self._version_lock:
            version = self.graph.version()
            if version == self._graph_version:
                return
            self._graph_version = version
            with self._groups_lock:
                self._groups.clear()
            self._index = None
            self._prepared = False
            with self._cache_lock:
                self._result_cache.clear()
            with self._pool_lock:
                stale_pool = self._process_pool
                self._process_pool = None
            self._count("invalidations")
        if stale_pool is not None:
            # Workers hold the *old* frozen snapshot; joining them can take
            # a moment, so it happens outside every engine lock.
            stale_pool.close()

    def prepare(self) -> "BCCEngine":
        """Freeze the graph's CSR snapshot so every query serves warm.

        Idempotent on an unmutated graph: the freeze is performed (and
        counted) only when no current snapshot exists, at most once even
        under thread contention.  Returns ``self`` so
        ``BCCEngine(graph).prepare()`` chains.
        """
        self._check_version()
        self._count("prepare_calls")
        if not self.graph.has_frozen():
            with self._freeze_lock:
                if not self.graph.has_frozen():
                    with obs_span("engine.csr_freeze"):
                        self.graph.freeze()
                    self._count("csr_freezes")
        self._prepared = True
        return self

    def is_prepared(self) -> bool:
        """Return ``True`` once :meth:`prepare` ran for the current graph."""
        self._check_version()
        return self._prepared

    def group(self, label: Label) -> LabeledGraph:
        """Return the (cached) subgraph induced by ``label``'s vertices.

        Algorithm 2 and the automatic parameter setting both consume
        label-induced subgraphs; caching them per engine means a batch of
        queries builds each group once instead of twice per query.  The fill
        is double-checked under the groups lock: concurrent queries on the
        same label build the group exactly once.
        """
        self._check_version()
        subgraph = self._groups.get(label)
        if subgraph is None:
            with self._groups_lock:
                subgraph = self._groups.get(label)
                if subgraph is None:
                    subgraph = self.graph.label_induced_subgraph(label)
                    self._groups[label] = subgraph
                    self._count("group_builds")
        return subgraph

    def ensure_index(self) -> BCIndex:
        """Return the engine's BCindex, building it once on first use.

        The build runs under the index lock, so concurrent index-based
        queries block until the single build finishes instead of racing a
        second one.  Build time is accumulated separately so :meth:`search`
        can report ``index_build_seconds`` apart from ``query_seconds``.
        """
        self._check_version()
        with self._index_lock:
            if self._index is None:
                self._index = BCIndex(
                    self.graph,
                    build=False,
                    backend=self.config.backend,
                    groups=self.group,
                )
            if not self._index.is_built():
                start = time.perf_counter()
                with obs_span("engine.index_build"):
                    self._index.build()
                build_seconds = time.perf_counter() - start
                self._index_build_seconds += build_seconds
                self._tls.index_seconds = (
                    getattr(self._tls, "index_seconds", 0.0) + build_seconds
                )
                self._count("index_builds")
            return self._index

    @property
    def index(self) -> BCIndex:
        """The engine's BCindex (built on first access)."""
        return self.ensure_index()

    def has_index(self) -> bool:
        """Return ``True`` when a current, built BCindex is attached."""
        self._check_version()
        index = self._index
        return index is not None and index.is_built()

    # ------------------------------------------------------------------
    # result cache
    # ------------------------------------------------------------------
    def _cache_get(self, key: Tuple) -> Optional[SearchResponse]:
        """LRU lookup: a hit moves the entry to the fresh end.

        With an admission policy attached, an entry past its TTL is evicted
        here and the lookup reports a miss — expired answers are never
        replayed.  (Counting happens outside the cache lock: counter and
        cache locks are both leaves and must never nest.)
        """
        policy = self._result_cache_policy
        expired = False
        try:
            with self._cache_lock:
                entry = self._result_cache.get(key)
                if entry is None:
                    return None
                if policy is not None and policy.expired(
                    entry.method, policy.now() - entry.stamp
                ):
                    del self._result_cache[key]
                    expired = True
                    return None
                self._result_cache.move_to_end(key)
                return entry.response
        finally:
            if expired:
                self._count("result_cache_expirations")

    def _cache_put(self, key: Tuple, response: SearchResponse, method: str) -> None:
        """Insert, evicting the least recently used entry beyond capacity.

        The admission policy (when attached) runs first: a refused response
        is simply not cached.  After the global LRU bound, the method's own
        budget is enforced by evicting that method's oldest entries only —
        a burst of one hot method can never push another method's answers
        out beyond the global LRU pressure it always exerted.
        """
        policy = self._result_cache_policy
        if policy is not None and not policy.admit(method, response):
            self._count("result_cache_rejections")
            return
        stamp = policy.now() if policy is not None else 0.0
        budget_evictions = 0
        with self._cache_lock:
            self._result_cache[key] = _CacheEntry(response, method, stamp)
            self._result_cache.move_to_end(key)
            while len(self._result_cache) > self._result_cache_size:
                self._result_cache.popitem(last=False)
            if policy is not None:
                budget = policy.method_budget(method)
                if budget is not None:
                    same_method = [
                        k
                        for k, entry in self._result_cache.items()
                        if entry.method == method
                    ]
                    # max(0, ...): a negative excess would slice from the
                    # *end* and evict under-budget entries.
                    excess = max(0, len(same_method) - budget)
                    for stale_key in same_method[:excess]:
                        del self._result_cache[stale_key]
                        budget_evictions += 1
        if budget_evictions:
            self._count("result_cache_budget_evictions", budget_evictions)

    def result_cache_len(self) -> int:
        """Number of responses currently cached."""
        with self._cache_lock:
            return len(self._result_cache)

    def result_cache_info(self) -> Dict[str, object]:
        """A JSON-serializable snapshot of the result cache's behaviour.

        The payload behind serving-stats endpoints: capacity, current
        entries (per method when a policy cares about methods), hit/miss
        counts and the derived hit rate (``None`` before the first lookup).
        """
        with self._cache_lock:
            entries = len(self._result_cache)
            per_method: Dict[str, int] = {}
            for entry in self._result_cache.values():
                per_method[entry.method] = per_method.get(entry.method, 0) + 1
        counters = self.counters_snapshot()
        hits = counters["result_cache_hits"]
        misses = counters["result_cache_misses"]
        lookups = hits + misses
        return {
            "capacity": self._result_cache_size,
            "entries": entries,
            "entries_per_method": per_method,
            "hits": hits,
            "misses": misses,
            "expirations": counters["result_cache_expirations"],
            "rejections": counters["result_cache_rejections"],
            "budget_evictions": counters["result_cache_budget_evictions"],
            "hit_rate": (hits / lookups) if lookups else None,
            "policy": (
                repr(self._result_cache_policy)
                if self._result_cache_policy is not None
                else None
            ),
        }

    @staticmethod
    def _replay(cached: SearchResponse, elapsed: float) -> SearchResponse:
        """A cache hit as a fresh response: shared result, own timings.

        The member set is copied so callers mutating a response cannot
        corrupt the cache; the (treated-as-immutable) native result object
        is shared.
        """
        return dataclasses.replace(
            cached,
            vertices=set(cached.vertices),
            timings={
                "total_seconds": elapsed,
                "index_build_seconds": 0.0,
                "query_seconds": elapsed,
                "cache_hit": 1.0,
            },
            instrumentation=None,
        )

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def _resolve_config(
        self, query: Query, override: Optional[SearchConfig]
    ) -> SearchConfig:
        """Per-call precedence: call override > query override > engine base."""
        if override is not None:
            return override
        if query.config is not None:
            return query.config
        return self.config

    def search(
        self,
        query: Query,
        *,
        config: Optional[SearchConfig] = None,
        instrumentation: Optional[SearchInstrumentation] = None,
        use_cache: bool = True,
    ) -> SearchResponse:
        """Serve one query and return a uniform :class:`SearchResponse`.

        "No community" is a normal answer (``status="empty"`` with a
        machine-readable ``reason``); malformed queries raise.

        Repeated queries are answered from the engine's LRU result cache
        (same method, vertices, resolved config and graph version) with
        fresh timings carrying a ``cache_hit`` marker.  ``use_cache=False``
        bypasses the cache for this call, and a caller-supplied
        ``instrumentation`` does too — the caller wants the algorithm's
        counters, so the algorithm actually runs.

        With an active trace (see :mod:`repro.obs.tracing`) the phases —
        cache lookup, CSR freeze, index build, kernel — report themselves
        as child spans; with none (the default) the span calls are no-ops.
        """
        with obs_span(
            "engine.search", method=getattr(query, "method", None)
        ) as timed:
            response = self._search_impl(
                query,
                config=config,
                instrumentation=instrumentation,
                use_cache=use_cache,
            )
            if timed is not None:
                timed.annotate(
                    status=response.status,
                    cache_hit=bool(response.timings.get("cache_hit")),
                )
            return response

    def _search_impl(
        self,
        query: Query,
        *,
        config: Optional[SearchConfig],
        instrumentation: Optional[SearchInstrumentation],
        use_cache: bool,
    ) -> SearchResponse:
        self._check_version()
        spec = get_method(query.method)
        cfg = self._resolve_config(query, config)
        if self.fault_plan is not None:
            # The chaos hook: a scheduled fault raises InjectedFault (a
            # replica-level failure, never a caller error) or stalls here.
            self.fault_plan.on(
                "engine.search", method=spec.name, vertices=query.vertices
            )
        cache_key: Optional[Tuple] = None
        if use_cache and self._result_cache_size > 0 and instrumentation is None:
            cache_key = (
                spec.name,
                query.vertices,
                cfg.cache_key(),
                self._graph_version,
            )
            lookup_start = time.perf_counter()
            with obs_span("engine.cache_lookup"):
                cached = self._cache_get(cache_key)
            if cached is not None:
                self._count("searches")
                self._count("result_cache_hits")
                return self._replay(cached, time.perf_counter() - lookup_start)
        inst = (
            instrumentation
            if instrumentation is not None
            else SearchInstrumentation()
        )
        self._tls.index_seconds = 0.0
        start = time.perf_counter()
        reason: Optional[str] = None
        try:
            with obs_span("engine.kernel", method=spec.name):
                result = spec.runner(self, query, cfg, inst)
            status = STATUS_OK
        except EmptyCommunityError as exc:
            result = None
            status = STATUS_EMPTY
            reason = exc.reason
        elapsed = time.perf_counter() - start
        # Counted only for queries that produce a response; malformed
        # queries raise above and are not "served" searches.
        self._count("searches")
        index_seconds = self._tls.index_seconds
        vertices = set(result.vertices) if result is not None else set()
        response = SearchResponse(
            method=spec.name,
            query=query.vertices,
            status=status,
            result=result,
            reason=reason,
            vertices=vertices,
            timings={
                "total_seconds": elapsed,
                "index_build_seconds": index_seconds,
                "query_seconds": elapsed - index_seconds,
            },
            instrumentation=inst,
        )
        if cache_key is not None:
            self._count("result_cache_misses")
            self._cache_put(cache_key, response, spec.name)
        return response

    # Module-level helpers shared with the sharded serving layer; kept as
    # (deprecated) aliases because external subclasses may override them.
    _is_caller_error = staticmethod(is_caller_error)

    def _error_response(self, query: Query, exc: Exception) -> SearchResponse:
        """A position-aligned ``status="error"`` response for a failed query."""
        return error_response_for(query, exc)

    def search_many(
        self,
        queries: Union[BatchQuery, Iterable[Query]],
        *,
        config: Optional[SearchConfig] = None,
        instrumentation: Optional[SearchInstrumentation] = None,
        on_error: str = "raise",
        max_workers: int = 1,
        use_cache: bool = True,
        backend: Optional[str] = None,
    ) -> List[SearchResponse]:
        """Serve a batch of queries over one warm snapshot.

        The engine prepares once (CSR freeze; label groups and the BCindex
        fill lazily and are reused), then answers the queries.  Responses
        are position-aligned with the input and each query equals its
        sequential :meth:`search` answer exactly, whatever ``max_workers``.

        Config precedence per query: the ``config`` argument of this call,
        then the query's own config, then the batch's shared config, then
        the engine base.

        ``on_error`` is the per-query failure policy.  With ``"raise"`` (the
        default, and :meth:`search`'s behavior) a malformed query raises
        :class:`repro.exceptions.QueryError` /
        :class:`repro.exceptions.VertexNotFoundError` and aborts the batch.
        With ``"return"`` the failure becomes a position-aligned
        ``status="error"`` response (machine-readable ``reason`` plus the
        exception message in ``error``) and the rest of the batch still
        runs.  Batch-structure errors — a member that is not a
        :class:`Query` at all — always raise, naming the offending index,
        and so does a :class:`VertexNotFoundError` for a *non-query* vertex
        (an implementation bug escaping a runner, not a caller error).

        ``max_workers > 1`` serves the batch from a thread pool over the
        warm snapshot; the engine's caches fill exactly once under their
        locks.  Under ``on_error="raise"`` the earliest-position failure is
        raised after in-flight queries finish.  Note that CPython's GIL
        serializes the pure-Python kernels, so threads help when a kernel
        releases the GIL or queries hit the result cache — not for raw
        single-core compute.

        A caller-supplied ``instrumentation`` is shared by the whole batch
        and therefore aggregates counters across every query (use
        ``max_workers=1`` with it — the counters are not merged atomically);
        leave it ``None`` to give each response its own per-search counters.

        ``backend`` selects the batch *transport*.  ``"process"`` scatters
        the rows over a pool of ``max_workers`` worker processes serving
        the same frozen CSR arrays from shared memory (zero-copy), gathers
        position-aligned responses through the wire codec, and applies the
        same ``on_error`` / deadline semantics — including a crashed
        worker, which becomes a ``reason="worker-crashed"`` error row under
        ``"return"``, never a hang.  ``None`` (the default) defers to the
        effective config's ``backend``; ``"auto"`` picks the process
        transport only for compute-bound shapes (``max_workers > 1``, more
        than one row, at least :data:`PROCESS_AUTO_MIN_EDGES` edges, no
        shared instrumentation).  When shared memory is unavailable (or an
        instrumented run was requested explicitly), the batch falls back to
        the threaded path with a one-time :class:`RuntimeWarning` and a
        ``"process_fallbacks"`` counter tick — never an error.  The pool is
        created lazily, reused across batches, resized up when a later call
        asks for more workers, and torn down on graph mutation or
        :meth:`close_process_pool`.
        """

        def prepare_once() -> None:
            if not self.is_prepared():
                self.prepare()

        if isinstance(queries, BatchQuery):
            batch = queries
        else:
            # Validated once here (same member-type rule serve_batch
            # applies) so the process path can inspect the rows without
            # consuming a caller's iterator.
            batch = BatchQuery(queries=tuple(queries))

        resolved_backend = backend
        if resolved_backend is None:
            base = config if config is not None else self.config
            resolved_backend = base.backend
        use_process = resolved_backend == "process" or (
            resolved_backend == "auto"
            and max_workers > 1
            and len(batch.queries) > 1
            and instrumentation is None
            and self.graph.num_edges() >= PROCESS_AUTO_MIN_EDGES
        )
        if use_process:
            responses = self._try_serve_process(
                batch,
                config=config,
                instrumentation=instrumentation,
                on_error=on_error,
                max_workers=max_workers,
                use_cache=use_cache,
            )
            if responses is not None:
                return responses

        return serve_batch(
            self,
            batch,
            config=config,
            instrumentation=instrumentation,
            on_error=on_error,
            max_workers=max_workers,
            use_cache=use_cache,
            prepare=prepare_once,
        )

    # ------------------------------------------------------------------
    # process batch transport
    # ------------------------------------------------------------------
    def _try_serve_process(
        self,
        batch: BatchQuery,
        *,
        config: Optional[SearchConfig],
        instrumentation: Optional[SearchInstrumentation],
        on_error: str,
        max_workers: int,
        use_cache: bool,
    ) -> Optional[List[SearchResponse]]:
        """Serve ``batch`` through the worker pool, or ``None`` to fall back.

        Every fallback (no shared memory, spawn failure, instrumented run)
        is graceful: counted in ``"process_fallbacks"``, warned exactly
        once per process, and the caller reverts to the threaded path.
        Caller errors and error rows propagate from the pool unchanged.
        """
        from repro.parallel.shm import ProcessBackendUnavailable

        if instrumentation is not None:
            # Live counter objects cannot cross the process boundary.
            self._register_process_fallback(
                "caller-supplied instrumentation cannot cross the process "
                "boundary"
            )
            return None
        try:
            pool = self._ensure_process_pool(max(1, max_workers))
            rows = [
                (query, self._row_config(config, query, batch.config), None)
                for query in batch.queries
            ]
            responses = pool.run_batch(rows, on_error=on_error, use_cache=use_cache)
        except ProcessBackendUnavailable as exc:
            self._register_process_fallback(str(exc))
            return None
        self._count("process_batches")
        self._count("process_tasks", len(batch.queries))
        return responses

    @staticmethod
    def _row_config(
        config: Optional[SearchConfig],
        query: Query,
        batch_config: Optional[SearchConfig],
    ) -> Optional[SearchConfig]:
        """The row's effective config under call > query > batch precedence.

        ``None`` means "engine default": the worker's engine was built from
        this engine's config, so leaving the row config empty applies the
        same base the threaded path would.
        """
        if config is not None:
            return config
        if query.config is not None:
            return query.config
        return batch_config

    def _ensure_process_pool(self, workers: int):
        """The live pool, created (or grown) on demand under the pool lock.

        ``prepare()`` runs *before* the pool lock — the export freezes the
        CSR snapshot, and the version lock acquires the pool lock during
        invalidation, so taking them in the other order here would deadlock.
        """
        from repro.parallel.pool import ProcessWorkerPool

        if not self.is_prepared():
            self.prepare()
        stale = None
        with self._pool_lock:
            current = self._process_pool
            if current is not None and current.workers >= workers:
                return current
            pool = ProcessWorkerPool(
                self.graph,
                self.config,
                workers,
                result_cache_size=self._result_cache_size,
                fault_plan=self.fault_plan,
            )
            try:
                pool.start()
            except Exception:
                pool.close()
                raise
            self._process_pool = pool
            stale = current
        if stale is not None:
            stale.close()
        return pool

    def _register_process_fallback(self, reason: str) -> None:
        self._count("process_fallbacks")
        _warn_process_fallback_once(reason)

    def process_pool_stats(self) -> Optional[Dict[str, object]]:
        """The worker pool's stats block, or ``None`` when no pool is live."""
        with self._pool_lock:
            pool = self._process_pool
        return None if pool is None else pool.stats()

    def close_process_pool(self) -> None:
        """Shut the worker pool down (idempotent; a later batch respawns it)."""
        with self._pool_lock:
            pool = self._process_pool
            self._process_pool = None
        if pool is not None:
            pool.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def explain(
        self, query: Query, *, config: Optional[SearchConfig] = None
    ) -> Dict[str, object]:
        """Describe how the engine would serve ``query`` without running it.

        Returns a plain dictionary: the resolved method spec, the effective
        parameters (including the coreness-based k defaults of Section 3.5),
        and the engine's prepared state.  Malformed queries raise exactly as
        :meth:`search` would.
        """
        self._check_version()
        spec = get_method(query.method)
        cfg = self._resolve_config(query, config)
        counters = self.counters_snapshot()
        with self._groups_lock:
            # Snapshot: iterating the live dict would race concurrent
            # group fills ("dictionary changed size during iteration").
            cached_groups = list(self._groups)
        info: Dict[str, object] = {
            "method": {
                "name": spec.name,
                "display": spec.display,
                "kind": spec.kind,
                "needs_index": spec.needs_index,
                "description": spec.description,
            },
            "query": tuple(query.vertices),
            "engine": {
                "prepared": self._prepared,
                "csr_frozen": self.graph.has_frozen(),
                "index_built": self.has_index(),
                "cached_groups": sorted(str(label) for label in cached_groups),
                "result_cache_entries": self.result_cache_len(),
                "index_build_seconds_total": self._index_build_seconds,
                "counters": counters,
            },
        }
        info["resolved"] = self._resolve_parameters(spec, query, cfg)
        return info

    def _resolve_parameters(
        self, spec: MethodSpec, query: Query, cfg: SearchConfig
    ) -> Dict[str, object]:
        """The parameter block of :meth:`explain`, per method kind."""
        self.graph.require_vertices(query.vertices)
        resolved: Dict[str, object] = {"b": cfg.b}
        if spec.kind == "bcc":
            q_left, q_right = query.as_pair()
            left_label, right_label = resolve_query_labels(
                self.graph, q_left, q_right
            )
            resolved["left_label"] = left_label
            resolved["right_label"] = right_label
            if spec.resolves_k_locally and (
                cfg.effective_k1() is None or cfg.effective_k2() is None
            ):
                # E.g. Algorithm 8 resolves unset k inside the local
                # candidate graph, which only exists at search time.
                resolved["k1"] = cfg.effective_k1()
                resolved["k2"] = cfg.effective_k2()
                resolved["note"] = "unset k resolved in the candidate graph"
            else:
                parameters = BCCParameters.from_query(
                    self.graph,
                    q_left,
                    q_right,
                    k1=cfg.effective_k1(),
                    k2=cfg.effective_k2(),
                    b=cfg.b,
                    groups=self.group,
                )
                resolved["k1"] = parameters.k1
                resolved["k2"] = parameters.k2
        elif spec.kind == "multilabel":
            # Same validation and parameter resolution as run_mbcc, so
            # explain() raises (and reports) exactly as search() would.
            validate_mbcc_query(self.graph, query.vertices)
            resolved["core_parameters"] = resolve_mbcc_parameters(
                self.graph,
                query.vertices,
                cfg.core_parameters,
                groups=self.group,
            )
        else:  # baselines resolve k at search time from the query's structure
            resolved["k"] = cfg.k
            if spec.name == "ctc":
                resolved["note"] = (
                    "k defaults to the maximum trussness containing the query"
                )
            elif spec.name == "psa":
                resolved["note"] = (
                    "k defaults to the minimum query-vertex coreness"
                )
            elif spec.description:
                # Custom baselines describe their own parameter semantics.
                resolved["note"] = spec.description
        return resolved

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BCCEngine(|V|={self.graph.num_vertices()}, "
            f"|E|={self.graph.num_edges()}, prepared={self._prepared}, "
            f"index={'built' if self.has_index() else 'lazy'}, "
            f"searches={self.counters_snapshot()['searches']})"
        )
