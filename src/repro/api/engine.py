"""The prepared, query-serving engine — the library's single front door.

``BCCEngine`` binds a labeled graph to a :class:`SearchConfig` and serves
queries through the method registry.  Unlike the legacy one-shot functions it
*prepares once and serves many*:

* :meth:`prepare` freezes the graph's CSR snapshot (version-cached, so every
  fast-path kernel on the unmutated graph reuses it);
* :meth:`group` caches the label-induced subgraphs that Algorithm 2 rebuilds
  per query on the one-shot path — each group (and the warm CSR snapshot its
  own kernels freeze) is built once per engine;
* :meth:`ensure_index` lazily builds one reusable BCindex for the
  index-based methods, timing the build separately from query time.

``counters`` records how often each preparation step actually ran, so tests
(and operators) can assert the amortization: a ``search_many`` batch over an
unmutated graph performs the CSR freeze and the BCindex build at most once.

The engine answers "no community" with a ``SearchResponse`` of
``status="empty"`` and a machine-readable ``reason`` — malformed queries
still raise (:class:`repro.exceptions.QueryError` and friends).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Union

from repro.api.config import SearchConfig
from repro.api.query import (
    STATUS_EMPTY,
    STATUS_OK,
    BatchQuery,
    Query,
    SearchResponse,
)
from repro.api.registry import MethodSpec, get_method
from repro.core.bc_index import BCIndex
from repro.core.bcc_model import BCCParameters, resolve_query_labels
from repro.core.multilabel import resolve_mbcc_parameters, validate_mbcc_query
from repro.eval.instrumentation import SearchInstrumentation
from repro.exceptions import EmptyCommunityError
from repro.graph.labeled_graph import Label, LabeledGraph


class BCCEngine:
    """A long-lived search engine over one labeled graph.

    Parameters
    ----------
    graph:
        The graph to serve, or any object exposing it as ``.graph`` (e.g. a
        :class:`repro.datasets.base.DatasetBundle`).
    config:
        Base :class:`SearchConfig`; per-query overrides ride on the query or
        the ``search(..., config=...)`` call.
    index:
        Optional pre-built :class:`BCIndex` to reuse; when omitted one is
        built lazily the first time an index-based method runs.

    The engine assumes a *serving* graph: searches never mutate it, and the
    caches stay warm across queries.  If the graph is mutated anyway, the
    engine detects the version change and transparently rebuilds its caches.
    """

    def __init__(
        self,
        graph: Union[LabeledGraph, object],
        config: Optional[SearchConfig] = None,
        index: Optional[BCIndex] = None,
    ) -> None:
        if not isinstance(graph, LabeledGraph):
            graph = getattr(graph, "graph", graph)
        if not isinstance(graph, LabeledGraph):
            raise TypeError(f"expected a LabeledGraph or bundle, got {type(graph)!r}")
        self.graph: LabeledGraph = graph
        self.config: SearchConfig = config if config is not None else SearchConfig()
        self._index: Optional[BCIndex] = index
        self._groups: Dict[Label, LabeledGraph] = {}
        self._graph_version: int = graph.version()
        self._prepared: bool = False
        self._index_build_seconds: float = 0.0
        self.counters: Dict[str, int] = {
            "prepare_calls": 0,
            "csr_freezes": 0,
            "index_builds": 0,
            "group_builds": 0,
            "searches": 0,
        }

    # ------------------------------------------------------------------
    # prepared state
    # ------------------------------------------------------------------
    def _check_version(self) -> None:
        """Invalidate every cache when the underlying graph was mutated."""
        version = self.graph.version()
        if version != self._graph_version:
            self._graph_version = version
            self._groups.clear()
            self._index = None
            self._prepared = False

    def prepare(self) -> "BCCEngine":
        """Freeze the graph's CSR snapshot so every query serves warm.

        Idempotent on an unmutated graph: the freeze is performed (and
        counted) only when no current snapshot exists.  Returns ``self`` so
        ``BCCEngine(graph).prepare()`` chains.
        """
        self._check_version()
        self.counters["prepare_calls"] += 1
        if not self.graph.has_frozen():
            self.graph.freeze()
            self.counters["csr_freezes"] += 1
        self._prepared = True
        return self

    def is_prepared(self) -> bool:
        """Return ``True`` once :meth:`prepare` ran for the current graph."""
        self._check_version()
        return self._prepared

    def group(self, label: Label) -> LabeledGraph:
        """Return the (cached) subgraph induced by ``label``'s vertices.

        Algorithm 2 and the automatic parameter setting both consume
        label-induced subgraphs; caching them per engine means a batch of
        queries builds each group once instead of twice per query.
        """
        self._check_version()
        subgraph = self._groups.get(label)
        if subgraph is None:
            subgraph = self.graph.label_induced_subgraph(label)
            self._groups[label] = subgraph
            self.counters["group_builds"] += 1
        return subgraph

    def ensure_index(self) -> BCIndex:
        """Return the engine's BCindex, building it once on first use.

        Build time is accumulated separately so :meth:`search` can report
        ``index_build_seconds`` apart from ``query_seconds``.
        """
        self._check_version()
        if self._index is None:
            self._index = BCIndex(
                self.graph,
                build=False,
                backend=self.config.backend,
                groups=self.group,
            )
        if not self._index.is_built():
            start = time.perf_counter()
            self._index.build()
            self._index_build_seconds += time.perf_counter() - start
            self.counters["index_builds"] += 1
        return self._index

    @property
    def index(self) -> BCIndex:
        """The engine's BCindex (built on first access)."""
        return self.ensure_index()

    def has_index(self) -> bool:
        """Return ``True`` when a current, built BCindex is attached."""
        self._check_version()
        return self._index is not None and self._index.is_built()

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def _resolve_config(
        self, query: Query, override: Optional[SearchConfig]
    ) -> SearchConfig:
        """Per-call precedence: call override > query override > engine base."""
        if override is not None:
            return override
        if query.config is not None:
            return query.config
        return self.config

    def search(
        self,
        query: Query,
        *,
        config: Optional[SearchConfig] = None,
        instrumentation: Optional[SearchInstrumentation] = None,
    ) -> SearchResponse:
        """Serve one query and return a uniform :class:`SearchResponse`.

        "No community" is a normal answer (``status="empty"`` with a
        machine-readable ``reason``); malformed queries raise.
        """
        self._check_version()
        spec = get_method(query.method)
        cfg = self._resolve_config(query, config)
        inst = (
            instrumentation
            if instrumentation is not None
            else SearchInstrumentation()
        )
        index_seconds_before = self._index_build_seconds
        start = time.perf_counter()
        reason: Optional[str] = None
        try:
            result = spec.runner(self, query, cfg, inst)
            status = STATUS_OK
        except EmptyCommunityError as exc:
            result = None
            status = STATUS_EMPTY
            reason = exc.reason
        elapsed = time.perf_counter() - start
        # Counted only for queries that produce a response; malformed
        # queries raise above and are not "served" searches.
        self.counters["searches"] += 1
        index_seconds = self._index_build_seconds - index_seconds_before
        vertices = set(result.vertices) if result is not None else set()
        return SearchResponse(
            method=spec.name,
            query=query.vertices,
            status=status,
            result=result,
            reason=reason,
            vertices=vertices,
            timings={
                "total_seconds": elapsed,
                "index_build_seconds": index_seconds,
                "query_seconds": elapsed - index_seconds,
            },
            instrumentation=inst,
        )

    def search_many(
        self,
        queries: Union[BatchQuery, Iterable[Query]],
        *,
        config: Optional[SearchConfig] = None,
        instrumentation: Optional[SearchInstrumentation] = None,
    ) -> List[SearchResponse]:
        """Serve a batch of queries over one warm snapshot.

        The engine prepares once (CSR freeze; label groups and the BCindex
        fill lazily and are reused), then answers the queries in order.
        Responses are position-aligned with the input and each query equals
        its sequential :meth:`search` answer exactly.

        Config precedence per query: the ``config`` argument of this call,
        then the query's own config, then the batch's shared config, then
        the engine base.

        A caller-supplied ``instrumentation`` is shared by the whole batch
        and therefore aggregates counters across every query; leave it
        ``None`` to give each response its own per-search counters.

        Malformed queries raise exactly as :meth:`search` does, aborting the
        batch at the offending query (validate inputs first — or pre-flight
        with :meth:`explain` — when partial results matter).
        """
        batch_config: Optional[SearchConfig] = None
        if isinstance(queries, BatchQuery):
            batch_config = queries.config
        items = list(queries)
        if items and not self.is_prepared():
            self.prepare()
        responses: List[SearchResponse] = []
        for query in items:
            effective = config
            if effective is None and query.config is None:
                effective = batch_config
            responses.append(
                self.search(query, config=effective, instrumentation=instrumentation)
            )
        return responses

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def explain(
        self, query: Query, *, config: Optional[SearchConfig] = None
    ) -> Dict[str, object]:
        """Describe how the engine would serve ``query`` without running it.

        Returns a plain dictionary: the resolved method spec, the effective
        parameters (including the coreness-based k defaults of Section 3.5),
        and the engine's prepared state.  Malformed queries raise exactly as
        :meth:`search` would.
        """
        self._check_version()
        spec = get_method(query.method)
        cfg = self._resolve_config(query, config)
        info: Dict[str, object] = {
            "method": {
                "name": spec.name,
                "display": spec.display,
                "kind": spec.kind,
                "needs_index": spec.needs_index,
                "description": spec.description,
            },
            "query": tuple(query.vertices),
            "engine": {
                "prepared": self._prepared,
                "csr_frozen": self.graph.has_frozen(),
                "index_built": self.has_index(),
                "cached_groups": sorted(str(label) for label in self._groups),
                "counters": dict(self.counters),
            },
        }
        info["resolved"] = self._resolve_parameters(spec, query, cfg)
        return info

    def _resolve_parameters(
        self, spec: MethodSpec, query: Query, cfg: SearchConfig
    ) -> Dict[str, object]:
        """The parameter block of :meth:`explain`, per method kind."""
        self.graph.require_vertices(query.vertices)
        resolved: Dict[str, object] = {"b": cfg.b}
        if spec.kind == "bcc":
            q_left, q_right = query.as_pair()
            left_label, right_label = resolve_query_labels(
                self.graph, q_left, q_right
            )
            resolved["left_label"] = left_label
            resolved["right_label"] = right_label
            if spec.resolves_k_locally and (
                cfg.effective_k1() is None or cfg.effective_k2() is None
            ):
                # E.g. Algorithm 8 resolves unset k inside the local
                # candidate graph, which only exists at search time.
                resolved["k1"] = cfg.effective_k1()
                resolved["k2"] = cfg.effective_k2()
                resolved["note"] = "unset k resolved in the candidate graph"
            else:
                parameters = BCCParameters.from_query(
                    self.graph,
                    q_left,
                    q_right,
                    k1=cfg.effective_k1(),
                    k2=cfg.effective_k2(),
                    b=cfg.b,
                    groups=self.group,
                )
                resolved["k1"] = parameters.k1
                resolved["k2"] = parameters.k2
        elif spec.kind == "multilabel":
            # Same validation and parameter resolution as run_mbcc, so
            # explain() raises (and reports) exactly as search() would.
            validate_mbcc_query(self.graph, query.vertices)
            resolved["core_parameters"] = resolve_mbcc_parameters(
                self.graph,
                query.vertices,
                cfg.core_parameters,
                groups=self.group,
            )
        else:  # baselines resolve k at search time from the query's structure
            resolved["k"] = cfg.k
            if spec.name == "ctc":
                resolved["note"] = (
                    "k defaults to the maximum trussness containing the query"
                )
            elif spec.name == "psa":
                resolved["note"] = (
                    "k defaults to the minimum query-vertex coreness"
                )
            elif spec.description:
                # Custom baselines describe their own parameter semantics.
                resolved["note"] = spec.description
        return resolved

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BCCEngine(|V|={self.graph.num_vertices()}, "
            f"|E|={self.graph.num_edges()}, prepared={self._prepared}, "
            f"index={'built' if self.has_index() else 'lazy'}, "
            f"searches={self.counters['searches']})"
        )
