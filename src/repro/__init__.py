"""Butterfly-Core Community Search over Labeled Graphs — reproduction library.

This package reproduces the system described in "Butterfly-Core Community
Search over Labeled Graphs" (PVLDB 2021): the (k1, k2, b)-BCC community model,
the Online-BCC / LP-BCC / L2P-BCC search algorithms, the multi-labeled mBCC
extension, the CTC and PSA baselines, synthetic stand-ins for the paper's
evaluation datasets, and the experiment harness regenerating every table and
figure of the evaluation section.

Quickstart
----------
>>> from repro import BCCEngine, Query, datasets
>>> bundle = datasets.generate_baidu_network(seed=1)
>>> engine = BCCEngine(bundle.graph).prepare()
>>> response = engine.search(Query("lp-bcc", bundle.default_query()))
>>> response.found
True

The one-shot free functions (``lp_bcc_search`` & co.) remain available and
delegate to the same engine path.
"""

from repro.baselines import ctc_search, psa_search
from repro.core import (
    BCIndex,
    BCCParameters,
    BCCResult,
    MBCCResult,
    butterfly_degrees,
    core_decomposition,
    find_g0,
    is_bcc,
    l2p_bcc_search,
    lp_bcc_search,
    mbcc_search,
    online_bcc_search,
    validate_bcc,
)
from repro.graph import (
    BipartiteView,
    LabeledGraph,
    compute_statistics,
    extract_bipartite,
)
from repro.api import (
    BCCEngine,
    BatchQuery,
    Query,
    SearchConfig,
    SearchResponse,
    get_method,
    method_names,
    register_method,
)
from repro.serving import (
    GraphDirectory,
    ServingStats,
    ShardedBCCEngine,
)
from repro.server import (
    Gateway,
    GatewayClient,
    ReplicaSet,
)
from repro.store import (
    Snapshot,
    SnapshotStore,
    SnapshotWriter,
)
from repro.parallel import (
    ProcessEngine,
    ProcessWorkerPool,
)

__version__ = "1.6.0"

__all__ = [
    "BCCEngine",
    "BCIndex",
    "BatchQuery",
    "Gateway",
    "GatewayClient",
    "GraphDirectory",
    "ProcessEngine",
    "ProcessWorkerPool",
    "ReplicaSet",
    "ServingStats",
    "ShardedBCCEngine",
    "Snapshot",
    "SnapshotStore",
    "SnapshotWriter",
    "Query",
    "SearchConfig",
    "SearchResponse",
    "get_method",
    "method_names",
    "register_method",
    "BCCParameters",
    "BCCResult",
    "BipartiteView",
    "LabeledGraph",
    "MBCCResult",
    "butterfly_degrees",
    "compute_statistics",
    "core_decomposition",
    "ctc_search",
    "extract_bipartite",
    "find_g0",
    "is_bcc",
    "l2p_bcc_search",
    "lp_bcc_search",
    "mbcc_search",
    "online_bcc_search",
    "psa_search",
    "validate_bcc",
    "__version__",
]
