"""AST-based invariant linter for this repository's hard-won guarantees.

Five rules, each grounded in an invariant an earlier PR paid for at
runtime (locks, fake clocks, exact wire round-trips, snapshot schema)
and enforced here statically, at the commit that would break it:

======  ======================  ==============================================
Rule    Name                    Invariant
======  ======================  ==============================================
BCC001  lock-discipline         guarded fields only under their ``with`` lock
BCC002  clock-hygiene           wall clocks only through injectable seams
BCC003  wire-drift              codec covers every wire dataclass field
BCC004  reason-exhaustiveness   reasons map to HTTP; methods are parity-tested
BCC005  snapshot-schema         snapshot writer/reader segment names agree
======  ======================  ==============================================

Run it with ``python -m repro.analysis [paths...]`` (see
:mod:`repro.analysis.cli`), suppress a single line with
``# noqa: BCC00x`` plus a justification, and grandfather legacy findings
with the committed baseline file (``--baseline`` / ``--write-baseline``)
— the ratchet that lets the rules land strict without blocking on a full
cleanup.
"""

from repro.analysis.base import Checker, Project, all_checkers, register_checker
from repro.analysis.baseline import load_baseline, save_baseline, split_findings
from repro.analysis.cli import Report, discover_files, main, run_analysis
from repro.analysis.findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from repro.analysis.source import RULE_PARSE, SourceFile, load_source

__all__ = [
    "Checker",
    "Finding",
    "Project",
    "RULE_PARSE",
    "Report",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SourceFile",
    "all_checkers",
    "discover_files",
    "load_baseline",
    "load_source",
    "main",
    "register_checker",
    "run_analysis",
    "save_baseline",
    "split_findings",
]
