"""The baseline ratchet: known findings that don't fail CI — yet.

The baseline is a committed JSON file listing findings by their
line-insensitive identity (``file``, ``rule``, ``message``).  At run time
each reported finding consumes at most one matching baseline entry:

* findings with a match are **baselined** — reported separately, exit 0;
* findings without a match are **active** — they fail the run;
* matching is a *multiset*: two identical violations in one file need two
  baseline entries, so introducing a second copy of a grandfathered bug
  still fails CI.

The ratchet only tightens: fixing a baselined finding and deleting its
entry (or regenerating with ``--write-baseline``) makes the fix permanent —
the finding can never silently return.  This repo ships an **empty**
baseline for ``src/`` on purpose (see ISSUE 8): real races were fixed,
not grandfathered.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.analysis.findings import Finding

__all__ = ["BaselineError", "load_baseline", "save_baseline", "split_findings"]

_VERSION = 1

Identity = Tuple[str, str, str]


class BaselineError(ValueError):
    """Raised when a baseline file is missing, malformed, or unversioned."""


def load_baseline(path: Path) -> "Counter[Identity]":
    """Read a baseline file into a multiset of finding identities."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise BaselineError(f"baseline file not found: {path}")
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline file {path} is not valid JSON: {exc}")
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise BaselineError(
            f"baseline file {path} must be an object with 'version': {_VERSION}"
        )
    entries = payload.get("findings", [])
    if not isinstance(entries, list):
        raise BaselineError(f"baseline file {path}: 'findings' must be a list")
    identities: "Counter[Identity]" = Counter()
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline entry #{index} is not an object")
        try:
            identity = (
                str(entry["file"]),
                str(entry["rule"]),
                str(entry["message"]),
            )
        except KeyError as exc:
            raise BaselineError(
                f"baseline entry #{index} is missing key {exc.args[0]!r}"
            )
        identities[identity] += 1
    return identities


def save_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write the current findings as the new baseline (sorted, stable)."""
    entries = [
        {"file": f.file, "rule": f.rule, "message": f.message}
        for f in sorted(findings, key=Finding.sort_key)
    ]
    payload = {"version": _VERSION, "findings": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def split_findings(
    findings: Iterable[Finding], baseline: "Counter[Identity]"
) -> Tuple[List[Finding], List[Finding]]:
    """Partition into (active, baselined), consuming baseline multiset slots."""
    remaining = Counter(baseline)
    active: List[Finding] = []
    baselined: List[Finding] = []
    for finding in sorted(findings, key=Finding.sort_key):
        identity = finding.identity()
        if remaining[identity] > 0:
            remaining[identity] -= 1
            baselined.append(finding)
        else:
            active.append(finding)
    return active, baselined
