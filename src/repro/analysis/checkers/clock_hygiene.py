"""BCC002 — clock hygiene: wall-clock calls only through injectable seams.

PR 6's whole chaos story rests on determinism: breakers, retries,
deadlines and fault plans all take ``clock=``/``sleep=`` callables so the
chaos suite can drive virtual time and prove exact parity with fault-free
runs.  One bare ``time.sleep`` or ``time.monotonic`` inside the server
package silently reintroduces wall-clock, and one inside the chaos suite
turns a deterministic test flaky.

Two scopes, two strictness levels:

* Files under ``repro/server/``, ``repro/parallel/`` or ``repro/obs/`` —
  ``time.sleep``, ``time.time`` and ``time.monotonic`` may appear **only
  as parameter defaults** (the declared injectable seam, e.g.
  ``def __init__(..., clock: Callable[[], float] = time.monotonic)``).
  Any other reference — call, alias, ``from time import sleep`` — is a
  finding.  ``time.perf_counter`` is deliberately allowed: it measures
  elapsed wall intervals for stats and never gates behavior.  The
  parallel package is in scope because its deadline watchdog and worker
  respawn logic gate behavior on the clock exactly like the server
  package's breakers do — chaos tests drive both on virtual time.  The
  obs package is in scope because traces, slow-query retention and the
  overhead benchmark must all be drivable on fake clocks.
* ``test_chaos.py`` — the three banned names may not appear **at all**,
  defaults included: chaos tests run on fake clocks, full stop.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Set

from repro.analysis.base import Checker, Project, register_checker
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["BANNED_TIME_NAMES", "ClockHygieneChecker"]

#: ``time`` attributes that gate behavior and must ride injectable seams.
BANNED_TIME_NAMES: FrozenSet[str] = frozenset({"sleep", "time", "monotonic"})

_CHAOS_BASENAME = "test_chaos.py"


#: Packages whose behavior-gating clocks must ride injectable seams.
_CLOCKED_PACKAGES = (
    ("repro", "server"),
    ("repro", "parallel"),
    ("repro", "obs"),
)


def _in_clocked_package(source: SourceFile) -> bool:
    parts = source.path.resolve().parts
    return any(
        parts[i : i + 2] == package
        for package in _CLOCKED_PACKAGES
        for i in range(len(parts) - 1)
    )


def _default_nodes(tree: ast.AST) -> Set[int]:
    """ids of expression nodes appearing as function-parameter defaults."""
    allowed: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                for sub in ast.walk(default):
                    allowed.add(id(sub))
    return allowed


@register_checker
class ClockHygieneChecker(Checker):
    rule = "BCC002"
    name = "clock-hygiene"
    description = (
        "no bare time.sleep/time.time/time.monotonic in repro/server/, "
        "repro/parallel/ or repro/obs/ outside injectable parameter "
        "defaults; none at all in test_chaos.py"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.parsed():
            is_chaos = source.basename == _CHAOS_BASENAME
            if not is_chaos and not _in_clocked_package(source):
                continue
            seam_ok = not is_chaos
            allowed = _default_nodes(source.tree) if seam_ok else set()
            yield from self._check_file(source, allowed, is_chaos)

    def _check_file(
        self, source: SourceFile, allowed: Set[int], is_chaos: bool
    ) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in BANNED_TIME_NAMES:
                        if not source.is_suppressed(node.lineno, self.rule):
                            yield self.finding(
                                source,
                                node,
                                self._message(
                                    f"'from time import {alias.name}'",
                                    is_chaos,
                                ),
                            )
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "time"
                and node.attr in BANNED_TIME_NAMES
            ):
                if id(node) in allowed:
                    continue  # a declared injectable seam (parameter default)
                if not source.is_suppressed(node.lineno, self.rule):
                    yield self.finding(
                        source,
                        node,
                        self._message(f"bare time.{node.attr}", is_chaos),
                    )

    def _message(self, what: str, is_chaos: bool) -> str:
        if is_chaos:
            return (
                f"{what} in the chaos suite — chaos tests must run on "
                f"fake clocks only"
            )
        return (
            f"{what} in a clocked package (repro/server/, repro/parallel/, "
            f"repro/obs/) — route wall-clock through an injectable "
            f"clock=/sleep= parameter default"
        )
