"""BCC004 — reason-code and method-registry exhaustiveness.

Two registries in this codebase promise exhaustive coverage elsewhere:

* Every ``REASON_*`` constant in ``exceptions.py`` is part of the wire
  contract and must map to an HTTP status in ``HTTP_STATUS_BY_REASON``.
  A new reason without a status silently falls back to 400 at the edge.
* Every method name registered with ``@register_method`` in
  ``methods.py`` must appear in the parity suite
  (``tests/api/test_parity.py``) — an unregistered-in-parity method ships
  with zero ground-truth coverage.

Both halves check string constants against string constants, so they fire
on the commit that adds the constant, not on the first production query
that trips over it.  Either half skips quietly when its anchor files are
not part of the analyzed set (e.g. linting ``src/`` alone skips the
parity half, since the parity suite lives under ``tests/``).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.base import Checker, Project, register_checker
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["ReasonExhaustivenessChecker"]

_EXCEPTIONS_BASENAME = "exceptions.py"
_METHODS_BASENAME = "methods.py"
_PARITY_BASENAME = "test_parity.py"
_STATUS_MAP_NAME = "HTTP_STATUS_BY_REASON"
_REGISTER_DECORATOR = "register_method"


def _reason_constants(tree: ast.AST) -> List[Tuple[str, int]]:
    """Module-level ``REASON_X = "literal"`` assignments (name, line)."""
    reasons = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if (
            isinstance(target, ast.Name)
            and target.id.startswith("REASON_")
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            reasons.append((target.id, node.lineno))
    return reasons


def _status_map(tree: ast.AST) -> Optional[ast.Assign]:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == _STATUS_MAP_NAME
            and isinstance(node.value, ast.Dict)
        ):
            return node
    return None


def _status_map_keys(assign: ast.Assign) -> Set[str]:
    keys: Set[str] = set()
    for key in assign.value.keys:
        if isinstance(key, ast.Name):
            keys.add(key.id)
    return keys


def _registered_methods(tree: ast.AST) -> List[Tuple[str, int]]:
    """First-positional string of every ``@register_method(...)`` (name, line)."""
    names = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for decorator in node.decorator_list:
            if (
                isinstance(decorator, ast.Call)
                and isinstance(decorator.func, ast.Name)
                and decorator.func.id == _REGISTER_DECORATOR
                and decorator.args
                and isinstance(decorator.args[0], ast.Constant)
                and isinstance(decorator.args[0].value, str)
            ):
                names.append((decorator.args[0].value, decorator.lineno))
    return names


def _string_constants(tree: ast.AST) -> Set[str]:
    return {
        node.value
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


@register_checker
class ReasonExhaustivenessChecker(Checker):
    rule = "BCC004"
    name = "reason-exhaustiveness"
    description = (
        "every REASON_* constant maps to an HTTP status, and every "
        "@register_method name appears in the parity suite"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        yield from self._check_reasons(project)
        yield from self._check_methods(project)

    def _check_reasons(self, project: Project) -> Iterator[Finding]:
        source = project.find_anchor(
            _EXCEPTIONS_BASENAME, lambda tree: _status_map(tree) is not None
        )
        if source is None:
            return
        status_assign = _status_map(source.tree)
        covered = _status_map_keys(status_assign)
        for name, line in _reason_constants(source.tree):
            if name in covered:
                continue
            if source.is_suppressed(line, self.rule):
                continue
            yield Finding(
                file=source.rel,
                line=line,
                col=0,
                rule=self.rule,
                message=(
                    f"{name} has no {_STATUS_MAP_NAME} entry — new reason "
                    f"codes must declare their HTTP status"
                ),
            )

    def _check_methods(self, project: Project) -> Iterator[Finding]:
        methods = project.find_anchor(
            _METHODS_BASENAME, lambda tree: bool(_registered_methods(tree))
        )
        parity = project.find_anchor(_PARITY_BASENAME)
        if methods is None or parity is None:
            return  # parity suite not in this run's file set: skip the half
        known = _string_constants(parity.tree)
        for name, line in _registered_methods(methods.tree):
            if name in known:
                continue
            if methods.is_suppressed(line, self.rule):
                continue
            yield Finding(
                file=methods.rel,
                line=line,
                col=0,
                rule=self.rule,
                message=(
                    f"registered method '{name}' does not appear in the "
                    f"parity suite ({_PARITY_BASENAME})"
                ),
            )
