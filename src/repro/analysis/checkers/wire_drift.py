"""BCC003 — wire drift: the codec must cover the dataclass fields.

The HTTP gateway's contract is "exact round trips": every field of
``Query``/``BatchQuery``/``SearchResponse`` that is part of the
observable surface must be written by the encoder and restored by the
decoder in ``protocol.py``.  Adding a dataclass field without touching
the codec ships a silent drop — the parity tests only notice if a trace
happens to exercise the new field with a non-default value.

The check is deliberately string-level: for each dataclass field, the
matching ``encode_*``/``decode_*`` function body must mention the field
name as a string constant (the wire key) or attribute access.  That is
exactly how the codec is written — ``payload["vertices"]``,
``response.reason`` — so a missing mention means a missing field, not a
style difference.

Declared server-side-only fields are exempt and documented here:
``SearchResponse.result`` (native result objects never ride the wire —
the observable surface ``vertices``/``iterations``/``query_distance`` is
materialized instead) and ``SearchResponse.instrumentation`` (same
decision, recorded in the protocol module docstring).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.base import Checker, Project, register_checker
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["WIRE_CLASSES", "WIRE_EXEMPT_FIELDS", "WireDriftChecker"]

#: dataclass name -> (encoder function, decoder function) in protocol.py.
WIRE_CLASSES: Dict[str, Tuple[str, str]] = {
    "Query": ("encode_query", "decode_query"),
    "BatchQuery": ("encode_batch", "decode_batch"),
    "SearchResponse": ("encode_response", "decode_response"),
}

#: Fields that deliberately stay server-side (see module docstring).
WIRE_EXEMPT_FIELDS: Dict[str, FrozenSet[str]] = {
    "SearchResponse": frozenset({"result", "instrumentation"}),
}

_MODEL_BASENAME = "query.py"
_CODEC_BASENAME = "protocol.py"


def _defines_class(tree: ast.AST, names: Set[str]) -> bool:
    return any(
        isinstance(node, ast.ClassDef) and node.name in names
        for node in ast.walk(tree)
    )


def _defines_function(tree: ast.AST, name: str) -> bool:
    return any(
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name == name
        for node in ast.walk(tree)
    )


def _class_fields(tree: ast.AST, class_name: str) -> List[Tuple[str, int]]:
    """Annotated field names (with lines) declared directly on the class."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields = []
            for statement in node.body:
                if isinstance(statement, ast.AnnAssign) and isinstance(
                    statement.target, ast.Name
                ):
                    fields.append((statement.target.id, statement.lineno))
            return fields
    return []


def _function_node(tree: ast.AST, name: str) -> Optional[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node
    return None


def _mentioned_names(function_node: ast.AST) -> Set[str]:
    """String constants and attribute names appearing in the function."""
    mentioned: Set[str] = set()
    for node in ast.walk(function_node):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            mentioned.add(node.value)
        elif isinstance(node, ast.Attribute):
            mentioned.add(node.attr)
    return mentioned


@register_checker
class WireDriftChecker(Checker):
    rule = "BCC003"
    name = "wire-drift"
    description = (
        "every Query/BatchQuery/SearchResponse field must be handled by "
        "its encoder and decoder in protocol.py (or be a declared "
        "server-side exemption)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        model = project.find_anchor(
            _MODEL_BASENAME,
            lambda tree: _defines_class(tree, set(WIRE_CLASSES)),
        )
        codec = project.find_anchor(
            _CODEC_BASENAME,
            lambda tree: _defines_function(tree, "encode_query"),
        )
        if model is None or codec is None:
            return  # anchors absent from this run's file set: nothing to say
        for class_name, (encoder, decoder) in sorted(WIRE_CLASSES.items()):
            if not _defines_class(model.tree, {class_name}):
                continue  # this model file doesn't carry the class
            exempt = WIRE_EXEMPT_FIELDS.get(class_name, frozenset())
            fields = _class_fields(model.tree, class_name)
            for side_name in (encoder, decoder):
                side = _function_node(codec.tree, side_name)
                if side is None:
                    yield Finding(
                        file=codec.rel,
                        line=1,
                        col=0,
                        rule=self.rule,
                        message=(
                            f"codec function {side_name}() for {class_name} "
                            f"is missing from {codec.basename}"
                        ),
                    )
                    continue
                mentioned = _mentioned_names(side)
                for field, model_line in fields:
                    if field in exempt or field in mentioned:
                        continue
                    if model.is_suppressed(model_line, self.rule):
                        continue
                    if codec.is_suppressed(side.lineno, self.rule):
                        continue
                    yield Finding(
                        file=codec.rel,
                        line=side.lineno,
                        col=side.col_offset,
                        rule=self.rule,
                        message=(
                            f"{class_name}.{field} is not handled by "
                            f"{side_name}() — wire drift"
                        ),
                    )
