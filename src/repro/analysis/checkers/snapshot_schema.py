"""BCC005 — snapshot schema: writer and reader must name the same segments.

A ``.bccsnap`` snapshot is a bag of named segments; ``SnapshotWriter``
chooses the names at write time and ``Snapshot``/``StoredBCIndex`` ask
for them back by name at attach time.  There is no schema file — the
agreement lives in string literals on both sides, which is exactly the
kind of contract a rename breaks silently: the writer happily writes
``"corenesses"``, every existing snapshot still round-trips its CRCs, and
the first attach dies at runtime with a missing-segment error.

Three directions, all string-level within ``snapshot.py`` (and its
sibling store modules, found by directory):

* every key of ``_CORE_SEGMENTS`` (the declared schema) must be written
  by ``SnapshotWriter``;
* every constant ``segment("name")`` read must be a written name — either
  a constant segment tuple or a declared dynamic prefix (the butterfly
  tables write ``f"bf_ids_{pair_id}"``-style families, read back through
  the header, so ``bf_ids_``/``bf_chi_`` count as written prefixes);
* every constant name the writer emits must be read (or declared in
  ``_CORE_SEGMENTS``) — a write-only segment is dead weight in every
  snapshot on disk.

Reads are collected only from files in the snapshot module's own
directory: tests deliberately probing missing segments must not register
as schema readers.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.base import Checker, Project, register_checker
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["SnapshotSchemaChecker"]

_SNAPSHOT_BASENAME = "snapshot.py"
_WRITER_CLASS = "SnapshotWriter"
_SCHEMA_NAME = "_CORE_SEGMENTS"


def _writer_class(tree: ast.AST) -> Optional[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == _WRITER_CLASS:
            return node
    return None


def _written_names(writer: ast.ClassDef) -> Tuple[Set[str], Set[str]]:
    """(constant segment names, dynamic name prefixes) the writer emits.

    Constant names come from 3-tuple literals of the
    ``(name, typecode, payload-call)`` shape both the initial segment
    list and every ``segments.append(...)`` use — the payload must be a
    call (``array_to_bytes(...)``), which keeps plain string triples like
    the ``("all", "cached", "none")`` mode choices out.  Prefixes come
    from f-strings starting with a literal (``f"bf_ids_{pair_id}"``).
    """
    names: Set[str] = set()
    prefixes: Set[str] = set()
    for node in ast.walk(writer):
        if (
            isinstance(node, ast.Tuple)
            and len(node.elts) == 3
            and isinstance(node.elts[0], ast.Constant)
            and isinstance(node.elts[0].value, str)
            and isinstance(node.elts[2], ast.Call)
        ):
            names.add(node.elts[0].value)
        elif (
            isinstance(node, ast.JoinedStr)
            and node.values
            and isinstance(node.values[0], ast.Constant)
            and isinstance(node.values[0].value, str)
        ):
            prefixes.add(node.values[0].value)
    return names, prefixes


def _core_schema(tree: ast.AST) -> List[Tuple[str, int]]:
    """Keys of the module-level ``_CORE_SEGMENTS`` dict (name, line)."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == _SCHEMA_NAME
            and isinstance(node.value, ast.Dict)
        ):
            return [
                (key.value, key.lineno)
                for key in node.value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            ]
    return []


def _segment_reads(source: SourceFile) -> List[Tuple[str, int]]:
    """Constant arguments of ``<anything>.segment("name")`` calls."""
    reads = []
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "segment"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            reads.append((node.args[0].value, node.lineno))
    return reads


@register_checker
class SnapshotSchemaChecker(Checker):
    rule = "BCC005"
    name = "snapshot-schema"
    description = (
        "segment names written by SnapshotWriter must equal the names "
        "declared in _CORE_SEGMENTS and read back at attach time"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        snapshot = project.find_anchor(
            _SNAPSHOT_BASENAME, lambda tree: _writer_class(tree) is not None
        )
        if snapshot is None:
            return
        writer = _writer_class(snapshot.tree)
        written, prefixes = _written_names(writer)
        schema = _core_schema(snapshot.tree)

        store_dir = snapshot.path.resolve().parent
        readers = [
            source
            for source in project.parsed()
            if source.path.resolve().parent == store_dir
        ]
        reads: List[Tuple[SourceFile, str, int]] = []
        for source in readers:
            for name, line in _segment_reads(source):
                reads.append((source, name, line))

        # Declared schema the writer never writes.
        for name, line in schema:
            if name in written:
                continue
            if snapshot.is_suppressed(line, self.rule):
                continue
            yield Finding(
                file=snapshot.rel,
                line=line,
                col=0,
                rule=self.rule,
                message=(
                    f"{_SCHEMA_NAME} declares segment '{name}' but "
                    f"{_WRITER_CLASS} never writes it"
                ),
            )

        # Reads of names the writer never writes.
        for source, name, line in reads:
            if name in written or any(name.startswith(p) for p in prefixes):
                continue
            if source.is_suppressed(line, self.rule):
                continue
            yield Finding(
                file=source.rel,
                line=line,
                col=0,
                rule=self.rule,
                message=(
                    f"segment '{name}' is read at attach time but "
                    f"{_WRITER_CLASS} never writes it"
                ),
            )

        # Writes nothing ever reads (nor declares in the schema).
        read_names = {name for _, name, _ in reads}
        schema_names = {name for name, _ in schema}
        for name in sorted(written):
            if name in read_names or name in schema_names:
                continue
            yield Finding(
                file=snapshot.rel,
                line=writer.lineno,
                col=writer.col_offset,
                rule=self.rule,
                message=(
                    f"{_WRITER_CLASS} writes segment '{name}' that no "
                    f"reader or {_SCHEMA_NAME} entry names — dead segment"
                ),
            )
