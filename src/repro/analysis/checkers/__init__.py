"""The shipped invariant checkers; importing this package registers them.

Add a checker by creating a module here and importing it below — the
``@register_checker`` decorator does the rest.
"""

from repro.analysis.checkers import (  # noqa: F401  (registration imports)
    clock_hygiene,
    lock_discipline,
    metrics_coverage,
    reason_exhaustiveness,
    snapshot_schema,
    wire_drift,
)

__all__ = [
    "clock_hygiene",
    "lock_discipline",
    "metrics_coverage",
    "reason_exhaustiveness",
    "snapshot_schema",
    "wire_drift",
]
