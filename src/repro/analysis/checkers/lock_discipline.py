"""BCC001 — lock discipline for registered guarded fields.

PR 3 made the engine thread-safe by pairing every piece of shared mutable
state with a leaf lock; PRs 4–7 extended the same idiom through the
serving, gateway and store layers.  The runtime concurrency suite catches
a forgotten lock only probabilistically — this checker catches it
lexically: every read or write of a field listed in
:data:`GUARDED_FIELDS` must appear inside a ``with <receiver>.<lock>:``
block naming the *same receiver* and the *matching lock*.

The receiver matters: ``LatencyHistogram.merge`` snapshots
``other._counts`` under ``with other._lock:`` — holding ``self._lock``
there would be the bug.  Tracking ``(receiver, lock)`` pairs makes that
pattern first-class instead of a false positive.

Deliberate non-goals, matching the codebase's documented conventions:

* ``__init__`` is exempt — construction happens before the object is
  shared, which is exactly why every class initializes its guarded
  fields without the lock.
* Methods ending in ``_locked`` are exempt — the suffix is this repo's
  "caller already holds the lock" convention
  (e.g. ``ReplicaHealth._eject_locked``).
* The check is lexical.  A closure defined inside a ``with`` block but
  called later still *counts* as locked; conversely a helper that the
  caller always locks around must either take the ``_locked`` suffix or
  carry a per-line ``# noqa: BCC001`` with a justification.
* Fields not in the registry (immutable-after-init tuples, fill-once
  caches with their own double-checked protocol like
  ``BCCEngine._groups``) are not checked.  Guarding a new field means
  adding it to the registry — the registry *is* the documented lock map.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Set, Tuple

from repro.analysis.base import Checker, Project, register_checker
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["GUARDED_FIELDS", "LockDisciplineChecker"]

#: file basename -> class name -> guarded field -> required lock attribute.
#: This is the machine-readable form of the lock maps documented in each
#: module's "locking" docstring section; keep the two in sync.
GUARDED_FIELDS: Dict[str, Dict[str, Dict[str, str]]] = {
    "engine.py": {
        "BCCEngine": {
            "_counters": "_counters_lock",
            "_result_cache": "_cache_lock",
        },
    },
    "sharded.py": {
        "ShardedBCCEngine": {
            "_counters": "_counters_lock",
            "_shards": "_shards_lock",
        },
    },
    "replicas.py": {
        "ReplicaSet": {
            "_in_flight": "_route_lock",
            "_routed": "_route_lock",
            "_searches": "_route_lock",
            "_failovers": "_route_lock",
            "_replica_failures": "_route_lock",
        },
    },
    "pool.py": {
        "ProcessWorkerPool": {
            "_counters": "_counters_lock",
            "_workers": "_workers_lock",
        },
    },
    "resilience.py": {
        "ReplicaHealth": {
            "_state": "_lock",
            "_consecutive_failures": "_lock",
            "_ejected_until": "_lock",
            "_probe_in_flight": "_lock",
            "_ewma": "_lock",
            "_samples": "_lock",
            "_failures": "_lock",
            "_ejections": "_lock",
            "_readmissions": "_lock",
        },
    },
    "directory.py": {
        "GraphDirectory": {
            "_engines": "_lock",
            "_latency": "_lock",
            "_store_modes": "_lock",
        },
    },
    "stats.py": {
        "LatencyHistogram": {
            "_counts": "_lock",
            "_count": "_lock",
            "_sum": "_lock",
            "_max": "_lock",
        },
    },
    "store.py": {
        "SnapshotStore": {
            "_counters": "_counters_lock",
        },
    },
    "app.py": {
        "Gateway": {
            "_counters": "_gauge_lock",
            "_in_flight": "_gauge_lock",
            "_degraded_cache": "_degraded_lock",
        },
    },
    "faults.py": {
        "FaultPlan": {
            "_site_calls": "_lock",
            "_matched": "_lock",
            "_injected": "_lock",
        },
    },
    "client.py": {
        "GatewayClient": {
            "_retries": "_retry_lock",
        },
    },
    "tracing.py": {
        "Tracer": {
            "_counters": "_lock",
        },
    },
    "metrics.py": {
        "MetricsRegistry": {
            "_counters": "_lock",
            "_sources": "_lock",
            "_owned": "_lock",
        },
    },
    "slowlog.py": {
        "SlowQueryLog": {
            "_entries": "_lock",
            "_counters": "_lock",
        },
    },
}

#: Methods whose bodies are exempt wholesale (see module docstring).
_EXEMPT_METHODS: FrozenSet[str] = frozenset({"__init__"})
_EXEMPT_SUFFIX = "_locked"

HeldLocks = FrozenSet[Tuple[str, str]]


@register_checker
class LockDisciplineChecker(Checker):
    rule = "BCC001"
    name = "lock-discipline"
    description = (
        "registered lock-guarded fields must be accessed inside a "
        "'with <receiver>.<lock>:' block for the matching lock"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.parsed():
            per_class = GUARDED_FIELDS.get(source.basename)
            if not per_class:
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                guarded = per_class.get(node.name)
                if not guarded:
                    continue
                yield from self._check_class(source, node, guarded)

    def _check_class(
        self,
        source: SourceFile,
        class_node: ast.ClassDef,
        guarded: Dict[str, str],
    ) -> Iterator[Finding]:
        for item in class_node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _EXEMPT_METHODS or item.name.endswith(
                _EXEMPT_SUFFIX
            ):
                continue
            for statement in item.body:
                yield from self._visit(
                    source, class_node.name, guarded, statement, frozenset()
                )

    def _visit(
        self,
        source: SourceFile,
        class_name: str,
        guarded: Dict[str, str],
        node: ast.AST,
        held: HeldLocks,
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: Set[Tuple[str, str]] = set()
            for with_item in node.items:
                # The context expressions themselves run *before* the lock
                # is held — check them under the incoming set.
                yield from self._visit(
                    source, class_name, guarded, with_item.context_expr, held
                )
                if with_item.optional_vars is not None:
                    yield from self._visit(
                        source,
                        class_name,
                        guarded,
                        with_item.optional_vars,
                        held,
                    )
                lock = _lock_of(with_item.context_expr)
                if lock is not None:
                    acquired.add(lock)
            inner = held | acquired
            for child in node.body:
                yield from self._visit(source, class_name, guarded, child, inner)
            return

        if isinstance(node, ast.Attribute):
            access = _receiver_field(node)
            if access is not None:
                receiver, field = access
                lock = guarded.get(field)
                if lock is not None and (receiver, lock) not in held:
                    if not source.is_suppressed(node.lineno, self.rule):
                        yield self.finding(
                            source,
                            node,
                            f"{class_name}.{field} accessed outside "
                            f"'with {receiver}.{lock}:'",
                        )

        for child in ast.iter_child_nodes(node):
            yield from self._visit(source, class_name, guarded, child, held)


def _lock_of(context_expr: ast.AST) -> "Tuple[str, str] | None":
    """``with recv.lockattr:`` -> ``(recv, lockattr)``; else ``None``."""
    if isinstance(context_expr, ast.Attribute) and isinstance(
        context_expr.value, ast.Name
    ):
        return (context_expr.value.id, context_expr.attr)
    return None


def _receiver_field(node: ast.Attribute) -> "Tuple[str, str] | None":
    """``recv.field`` with a simple Name receiver -> ``(recv, field)``."""
    if isinstance(node.value, ast.Name):
        return (node.value.id, node.attr)
    return None
