"""BCC006 — metrics coverage: every incremented counter is declared.

PR 10's observability layer promises that every counter the stack bumps
is scrapeable at ``GET /metrics``.  The runtime half of that promise is
the :class:`repro.obs.metrics.MetricsRegistry` source model; this
checker is the static half: every *literal* counter name passed to one
of the codebase's counter-bump idioms must appear in the
``EXPORTED_COUNTERS`` manifest in ``repro/obs/metrics.py``.  A PR that
adds ``self._count("new_thing")`` without declaring ``"new_thing"``
fails the linter before it ever ships an invisible counter.

Recognized bump shapes (all four are established idioms in this repo):

* ``self._count("name", ...)`` — the leaf-lock counter helper used by
  the engine, router, pool, store, tracer, registry and slow log; the
  first positional argument is the counter name.
* ``self._count_worker(worker, "name")`` — the pool's per-worker row
  bump; the *second* positional argument is the counter name.
* ``gateway.count("name")`` / ``self.gateway.count("name")`` — the
  gateway's public bump.  Restricting the receiver to a terminal
  ``gateway`` keeps ``itertools.count()`` and similar out of scope.
* ``<recv>._counters["name"] += n`` — direct augmented assignment into
  a counters dict with a literal key.

Dynamic names (``self._count(counter)``) are deliberately out of scope —
they forward an already-checked literal from elsewhere.  Files named
``test_*`` are skipped: tests may bump throwaway counters on stubs.  The
manifest is located by anchor (the ``metrics.py`` whose AST assigns
``EXPORTED_COUNTERS``); when no anchor is present in the analyzed set,
the checker stays silent — running the linter over a subtree must not
invent findings about files it was never shown.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional, Set, Tuple

from repro.analysis.base import Checker, Project, register_checker
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["MetricsCoverageChecker", "declared_counters"]

_MANIFEST_BASENAME = "metrics.py"
_MANIFEST_NAME = "EXPORTED_COUNTERS"


def _manifest_assignment(tree: ast.AST) -> Optional[ast.Assign]:
    """The ``EXPORTED_COUNTERS = ...`` assignment in ``tree``, if any."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == _MANIFEST_NAME
            for target in node.targets
        ):
            return node
    return None


def declared_counters(tree: ast.AST) -> Optional[FrozenSet[str]]:
    """The string literals inside the ``EXPORTED_COUNTERS`` frozenset.

    Returns ``None`` when the tree has no manifest assignment.  The value
    is read purely lexically — every string constant anywhere inside the
    assigned expression counts — so the manifest must stay a pure
    literal (which is also what lets the runtime test pin it to the live
    name tuples).
    """
    assignment = _manifest_assignment(tree)
    if assignment is None:
        return None
    names: Set[str] = set()
    for node in ast.walk(assignment.value):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
    return frozenset(names)


def _literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _bumped_name(node: ast.AST) -> "Optional[Tuple[str, ast.AST]]":
    """``(counter_name, anchor_node)`` when ``node`` is a counter bump.

    Only literal names are reported; dynamic forwarding returns ``None``.
    """
    if isinstance(node, ast.Call):
        func = node.func
        # self._count("name", ...) — first positional arg.
        if isinstance(func, ast.Attribute) and func.attr == "_count":
            if node.args:
                name = _literal_str(node.args[0])
                if name is not None:
                    return (name, node.args[0])
            return None
        # self._count_worker(worker, "name") — second positional arg.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "_count_worker"
            and len(node.args) >= 2
        ):
            name = _literal_str(node.args[1])
            if name is not None:
                return (name, node.args[1])
            return None
        # gateway.count("name") / self.gateway.count("name").
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "count"
            and _terminal_attr(func.value) == "gateway"
            and node.args
        ):
            name = _literal_str(node.args[0])
            if name is not None:
                return (name, node.args[0])
        return None
    # <recv>._counters["name"] += n
    if isinstance(node, ast.AugAssign) and isinstance(
        node.target, ast.Subscript
    ):
        target = node.target
        if (
            isinstance(target.value, ast.Attribute)
            and target.value.attr == "_counters"
        ):
            name = _literal_str(target.slice)
            if name is not None:
                return (name, target)
    return None


def _terminal_attr(node: ast.AST) -> Optional[str]:
    """The last path segment of a receiver: ``self.gateway`` -> ``gateway``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register_checker
class MetricsCoverageChecker(Checker):
    rule = "BCC006"
    name = "metrics-coverage"
    description = (
        "every literal counter name bumped via _count/_count_worker/"
        "gateway.count/_counters[...] must be declared in the "
        "EXPORTED_COUNTERS manifest (repro/obs/metrics.py)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        anchor = project.find_anchor(
            _MANIFEST_BASENAME,
            lambda tree: _manifest_assignment(tree) is not None,
        )
        if anchor is None:
            return  # no manifest in the analyzed set: nothing to enforce
        declared = declared_counters(anchor.tree)
        assert declared is not None  # the anchor predicate guarantees it
        for source in project.parsed():
            if source.basename.startswith("test_"):
                continue
            yield from self._check_file(source, declared)

    def _check_file(
        self, source: SourceFile, declared: FrozenSet[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            bump = _bumped_name(node)
            if bump is None:
                continue
            name, anchor = bump
            if name in declared:
                continue
            if source.is_suppressed(anchor.lineno, self.rule):
                continue
            yield self.finding(
                source,
                anchor,
                f"counter {name!r} is incremented but not declared in "
                f"{_MANIFEST_NAME} (repro/obs/metrics.py) — it would "
                f"never appear at /metrics",
            )
