"""Checker framework: the project view, the base class, the registry.

A checker sees the whole :class:`Project` (every parsed file of the run),
not one file at a time, because three of the five shipped rules are
*cross-file contracts*: the wire codec must cover the dataclasses
(BCC003), the parity suite must cover the method registry (BCC004), the
snapshot reader must agree with the writer (BCC005).  Single-file rules
simply iterate ``project.files``.

Anchor files are matched by **basename** (``engine.py``, ``protocol.py``,
``snapshot.py``…), so fixture tests reproduce any rule by dropping a
same-named file in a temp directory — no import machinery, no packaging.
A cross-file checker whose anchors are absent from the analyzed set skips
quietly: running the linter over a subtree must not invent findings about
files it was never shown.

Adding a checker is three steps: subclass :class:`Checker` with a unique
``rule``/``name``, implement :meth:`Checker.check`, decorate with
:func:`register_checker`, and import the module from
``repro.analysis.checkers`` so registration runs.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Type

from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = [
    "Checker",
    "Project",
    "all_checkers",
    "register_checker",
]


class Project:
    """Every parsed file of one analysis run, with anchor lookups."""

    def __init__(self, files: Iterable[SourceFile]) -> None:
        self.files: List[SourceFile] = sorted(files, key=lambda f: f.rel)

    def parsed(self) -> Iterator[SourceFile]:
        """Files with a usable AST (syntax errors are reported separately)."""
        for source in self.files:
            if source.tree is not None:
                yield source

    def by_basename(self, basename: str) -> List[SourceFile]:
        """All parsed files named ``basename``, in deterministic order."""
        return [f for f in self.parsed() if f.basename == basename]

    def find_anchor(
        self,
        basename: str,
        predicate: Optional[Callable[[ast.AST], bool]] = None,
    ) -> Optional[SourceFile]:
        """First parsed ``basename`` file whose AST satisfies ``predicate``.

        Cross-file checkers use this to locate their ground-truth file
        (e.g. the ``exceptions.py`` that actually defines
        ``HTTP_STATUS_BY_REASON``) among same-named candidates.
        """
        for source in self.by_basename(basename):
            if predicate is None or predicate(source.tree):
                return source
        return None


class Checker:
    """Base class: one rule id, one invariant, one :meth:`check` pass."""

    #: Unique rule id, ``BCC`` + three digits (used by noqa and baseline).
    rule: str = ""
    #: Short kebab-case name for reports and docs.
    name: str = ""
    #: One-line statement of the invariant being enforced.
    description: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        """A finding anchored at ``node``'s location in ``source``."""
        return Finding(
            file=source.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=message,
        )


_REGISTRY: Dict[str, Type[Checker]] = {}


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.rule:
        raise ValueError(f"checker {cls.__name__} declares no rule id")
    existing = _REGISTRY.get(cls.rule)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"rule {cls.rule} registered twice "
            f"({existing.__name__} and {cls.__name__})"
        )
    _REGISTRY[cls.rule] = cls
    return cls


def all_checkers() -> List[Checker]:
    """Fresh instances of every registered checker, ordered by rule id."""
    import repro.analysis.checkers  # noqa: F401  (registration side effect)

    return [_REGISTRY[rule]() for rule in sorted(_REGISTRY)]
