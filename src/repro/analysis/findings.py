"""The finding model shared by every checker, reporter and the baseline.

A :class:`Finding` is one violated invariant at one source location.  Two
properties matter for everything downstream:

* **Deterministic ordering** — :meth:`Finding.sort_key` orders findings by
  ``(file, line, col, rule, message)``, so two runs over the same tree
  always print (and JSON-serialize) byte-identical reports.  CI diffs and
  the baseline ratchet depend on this.
* **Line-insensitive identity** — :meth:`Finding.identity` deliberately
  drops the line/column.  A baselined finding keeps matching when unrelated
  edits shift it up or down the file; it stops matching (and fails CI) only
  when the file, rule or message changes — i.e. when the violation itself
  changed or multiplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Finding", "SEVERITY_ERROR", "SEVERITY_WARNING"]

#: A violated invariant: fails the run unless suppressed or baselined.
SEVERITY_ERROR = "error"
#: Advisory: reported, but never fails the run.
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``file`` is a POSIX-style path relative to the analysis root (the
    current working directory), so reports are stable across machines.
    """

    file: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = SEVERITY_ERROR

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        """Total order making report output deterministic."""
        return (self.file, self.line, self.col, self.rule, self.message)

    def identity(self) -> Tuple[str, str, str]:
        """Baseline-matching key: file + rule + message, no line numbers."""
        return (self.file, self.rule, self.message)

    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable form (the ``--format json`` row)."""
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        """The ``--format text`` row: ``file:line:col: RULE message``."""
        return f"{self.file}:{self.line}:{self.col}: {self.rule} {self.message}"
