"""``python -m repro.analysis`` — run the invariant checkers over a tree.

Usage::

    python -m repro.analysis [paths...]          # default: src
    python -m repro.analysis --format json src tests
    python -m repro.analysis --baseline analysis-baseline.json src tests
    python -m repro.analysis --baseline B --write-baseline src   # ratchet

Exit codes are CI-shaped:

* ``0`` — no active findings (clean, or everything suppressed/baselined);
* ``1`` — at least one active error-severity finding;
* ``2`` — usage or environment error (bad path, malformed baseline).

``--baseline`` names the committed ratchet file: findings matching a
baseline entry are reported in a separate section and do not fail the
run; anything new does.  ``--write-baseline`` rewrites that file from the
current findings — the way the ratchet tightens after a cleanup.
``--output`` additionally writes the JSON report to a file (the CI
artifact) regardless of the terminal ``--format``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.base import Project, all_checkers
from repro.analysis.baseline import (
    BaselineError,
    load_baseline,
    save_baseline,
    split_findings,
)
from repro.analysis.findings import SEVERITY_ERROR, Finding
from repro.analysis.source import SourceFile, load_source

__all__ = ["Report", "discover_files", "main", "run_analysis"]

#: Directory names never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".svn", ".tox", ".venv", "venv"}


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            seen.setdefault(candidate.resolve(), None)
    return sorted(seen)


@dataclass
class Report:
    """Everything one run produced, ready for either output format."""

    files: int
    findings: List[Finding] = field(default_factory=list)  # active
    baselined: List[Finding] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return any(f.severity == SEVERITY_ERROR for f in self.findings)

    def to_payload(self) -> Dict[str, object]:
        by_rule: Dict[str, int] = {}
        for finding in self.findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        return {
            "version": 1,
            "files": self.files,
            "summary": {
                "active": len(self.findings),
                "baselined": len(self.baselined),
                "by_rule": dict(sorted(by_rule.items())),
            },
            "findings": [f.to_payload() for f in self.findings],
            "baselined": [f.to_payload() for f in self.baselined],
        }

    def render_text(self) -> str:
        lines: List[str] = []
        for finding in self.findings:
            lines.append(finding.render())
        if self.baselined:
            lines.append("")
            lines.append(f"baselined ({len(self.baselined)}):")
            for finding in self.baselined:
                lines.append("  " + finding.render())
        lines.append("")
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{len(self.findings)} {noun} "
            f"({len(self.baselined)} baselined) in {self.files} files"
        )
        return "\n".join(lines)


def run_analysis(
    files: Sequence[Path],
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
) -> Report:
    """Parse ``files``, run every registered checker, apply the baseline."""
    root = root or Path.cwd()
    sources: List[SourceFile] = [load_source(path, root) for path in files]
    project = Project(sources)

    findings: List[Finding] = []
    for source in sources:
        if source.parse_finding is not None:
            findings.append(source.parse_finding)
    for checker in all_checkers():
        findings.extend(checker.check(project))
    findings.sort(key=Finding.sort_key)

    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        active, baselined = split_findings(findings, baseline)
    else:
        active, baselined = findings, []
    return Report(files=len(sources), findings=active, baselined=baselined)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter (BCC001..BCC006).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="baseline file: matching findings are reported but do not fail",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (the CI artifact)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)
    if options.write_baseline and options.baseline is None:
        parser.error("--write-baseline requires --baseline FILE")

    try:
        files = discover_files([Path(p) for p in options.paths])
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if options.write_baseline:
        # Collect raw findings (no baseline applied) and persist them.
        report = run_analysis(files)
        save_baseline(options.baseline, report.findings)
        print(
            f"wrote {len(report.findings)} findings to {options.baseline}",
            file=sys.stderr,
        )
        return 0

    try:
        report = run_analysis(files, baseline_path=options.baseline)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if options.output is not None:
        options.output.write_text(
            json.dumps(report.to_payload(), indent=2) + "\n", encoding="utf-8"
        )
    if options.format == "json":
        print(json.dumps(report.to_payload(), indent=2))
    else:
        print(report.render_text())
    return 1 if report.failed else 0
