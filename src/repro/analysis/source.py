"""Parsed source files and per-line ``# noqa: BCC###`` suppressions.

Every checker works from the same :class:`SourceFile`: the raw text, the
parsed AST, and a map of which rules each line suppresses.  Suppression
follows the flake8 convention:

* ``# noqa`` (bare) silences every rule on that line;
* ``# noqa: BCC001`` or ``# noqa: BCC001, BCC002`` silences only the
  named rules.

A file that does not parse yields a single :data:`RULE_PARSE` finding at
the syntax-error location instead of crashing the run — a broken file in
CI should read as "analysis failed HERE", not as a traceback.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional

from repro.analysis.findings import Finding

__all__ = ["RULE_PARSE", "SourceFile", "load_source", "relative_posix"]

#: Pseudo-rule reported when a file cannot be parsed at all.
RULE_PARSE = "BCC000"

#: Bare ``# noqa`` or ``# noqa: BCC001[, BCC002...]`` (case-insensitive,
#: flake8-style).  The negative lookahead keeps ``# noqabbles`` inert.
_NOQA_RE = re.compile(
    r"#\s*noqa(?!\w)"
    r"(?::\s*(?P<codes>[A-Z]{3}[0-9]{3}(?:\s*,\s*[A-Z]{3}[0-9]{3})*))?",
    re.IGNORECASE,
)


def relative_posix(path: Path, root: Path) -> str:
    """``path`` relative to ``root`` as a POSIX string (absolute if outside)."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


class SourceFile:
    """One analyzed file: path, text, AST, and the noqa line map."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines: List[str] = text.splitlines()
        #: line number -> frozenset of suppressed rules, or ``None`` for a
        #: bare ``# noqa`` that suppresses everything on the line.
        self.noqa: Dict[int, Optional[FrozenSet[str]]] = {}
        self.tree: Optional[ast.AST] = None
        self.parse_finding: Optional[Finding] = None
        self._scan_noqa()
        self._parse()

    @property
    def basename(self) -> str:
        return self.path.name

    def _scan_noqa(self) -> None:
        for number, line in enumerate(self.lines, start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                self.noqa[number] = None
            else:
                parsed = frozenset(
                    code.strip().upper() for code in codes.split(",")
                )
                existing = self.noqa.get(number)
                if existing is not None:
                    parsed = parsed | existing
                if number in self.noqa and self.noqa[number] is None:
                    continue  # bare noqa already covers everything
                self.noqa[number] = parsed

    def _parse(self) -> None:
        try:
            self.tree = ast.parse(self.text, filename=str(self.path))
        except SyntaxError as exc:
            self.parse_finding = Finding(
                file=self.rel,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=RULE_PARSE,
                message=f"file does not parse: {exc.msg}",
            )

    def is_suppressed(self, line: int, rule: str) -> bool:
        """True when ``line`` carries a noqa comment covering ``rule``."""
        if line not in self.noqa:
            return False
        codes = self.noqa[line]
        return codes is None or rule.upper() in codes


def load_source(path: Path, root: Path) -> SourceFile:
    """Read and parse ``path``; never raises on bad syntax (see module doc)."""
    text = path.read_text(encoding="utf-8")
    return SourceFile(path=path, rel=relative_posix(path, root), text=text)
