"""The slow-query log: a bounded ring buffer of retained trace documents.

Traces whose total duration crosses ``threshold_ms`` are retained as
their JSON document (:meth:`repro.obs.tracing.Trace.to_dict` — *not* the
live object, so retained entries never pin engines or graphs), newest
last, evicting the oldest beyond ``capacity``.  ``GET /debug/slow`` dumps
the buffer and ``python -m repro.obs`` pretty-prints it as span trees.

Entries carry a monotonically increasing ``seq`` stamp instead of a wall
timestamp: the log stays deterministic under fake clocks (BCC002 — this
package's only clocks are the injectable trace clocks) and ``seq`` still
totally orders retention.

Locking: ``_entries`` and ``_counters`` only under ``_lock`` (leaf).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = ["SLOWLOG_COUNTER_NAMES", "SlowQueryLog"]

#: Slow-log counter names, in reporting order.
SLOWLOG_COUNTER_NAMES = ("slow_offered", "slow_retained", "slow_evicted")


class SlowQueryLog:
    """Retain traces slower than a threshold, bounded by a ring buffer."""

    def __init__(self, threshold_ms: float = 100.0, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("slow-query log capacity must be >= 1")
        self._threshold_ms = float(threshold_ms)
        self._capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: Deque[Dict[str, object]] = deque()
        self._seq = 0
        self._counters: Dict[str, int] = {
            name: 0 for name in SLOWLOG_COUNTER_NAMES
        }

    @property
    def threshold_ms(self) -> float:
        return self._threshold_ms

    @property
    def capacity(self) -> int:
        return self._capacity

    def set_threshold_ms(self, threshold_ms: float) -> None:
        self._threshold_ms = float(threshold_ms)

    def _count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def counters_snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def offer(self, trace) -> bool:
        """Retain ``trace`` when it crossed the threshold; ``True`` if kept."""
        self._count("slow_offered")
        duration_ms = trace.duration_seconds() * 1000.0
        if duration_ms < self._threshold_ms:
            return False
        entry = trace.to_dict()
        with self._lock:
            self._counters["slow_retained"] += 1
            self._seq += 1
            entry["seq"] = self._seq
            self._entries.append(entry)
            if len(self._entries) > self._capacity:
                self._entries.popleft()
                self._counters["slow_evicted"] += 1
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Retained trace documents, newest first (optionally limited)."""
        with self._lock:
            entries = list(self._entries)
        entries.reverse()
        if limit is not None:
            entries = entries[: max(0, int(limit))]
        return entries

    def payload(self) -> Dict[str, object]:
        """The ``GET /debug/slow`` document."""
        return {
            "threshold_ms": self._threshold_ms,
            "capacity": self._capacity,
            "retained": len(self),
            "counters": self.counters_snapshot(),
            "traces": self.snapshot(),
        }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
