"""The unified metrics registry and its Prometheus text exposition.

Every layer of the serving stack keeps ad-hoc counters behind leaf locks
(``counters_snapshot()``, pool worker blocks, store attach counters,
breaker ejections).  :class:`MetricsRegistry` unifies them without moving
them: a layer registers a **source** — a callable returning
:class:`Sample` rows built from its existing snapshot methods — and the
registry renders everything as Prometheus text format for ``GET /metrics``.
Because sources read the same snapshot methods ``/stats`` reads, the two
endpoints agree by construction.

The registry also owns first-class metrics (:class:`Counter`,
:class:`Gauge`, :class:`Histogram` — the histogram reuses
:class:`repro.serving.stats.LatencyHistogram`) for code that has no
pre-existing counter dict.

:data:`EXPORTED_COUNTERS` is the machine-readable manifest of every
counter name the stack increments; the BCC006 analysis checker
(``repro.analysis.checkers.metrics_coverage``) statically verifies that
every ``_count("name")``-style bump anywhere in ``repro/`` names a
declared counter, so a future PR cannot add a counter that never reaches
``/metrics``.  ``tests/obs/test_metrics.py`` pins the manifest to the
live name tuples (``ENGINE_COUNTER_NAMES``, ``POOL_COUNTER_NAMES``, ...).

Exposition note: ``LatencyHistogram.snapshot()`` reports *per-bucket*
counts; Prometheus ``le`` buckets are *cumulative*, so the renderer
cumulates while emitting.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "EXPORTED_COUNTERS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY_COUNTER_NAMES",
    "Sample",
    "counter_samples",
]

#: Every counter name incremented anywhere in ``repro/`` — the manifest
#: the BCC006 checker reads (it must stay a pure literal).  Grouped by the
#: layer that owns the name; names shared across layers appear once.
EXPORTED_COUNTERS = frozenset(
    {
        # BCCEngine (repro/api/engine.py, ENGINE_COUNTER_NAMES)
        "prepare_calls",
        "csr_freezes",
        "index_builds",
        "group_builds",
        "searches",
        "invalidations",
        "result_cache_hits",
        "result_cache_misses",
        "result_cache_expirations",
        "result_cache_rejections",
        "result_cache_budget_evictions",
        "process_batches",
        "process_tasks",
        "process_fallbacks",
        # ShardedBCCEngine router (repro/serving/sharded.py)
        "partitions",
        "cross_shard_queries",
        "shard_engines_built",
        "shard_attaches",
        "shard_persists",
        "shard_evictions",
        # ProcessWorkerPool (repro/parallel/pool.py, POOL_COUNTER_NAMES)
        "batches",
        "tasks",
        "completed",
        "error_rows",
        "crashes",
        "respawns",
        "deadline_kills",
        "stale_results",
        # per-worker rows (pool _count_worker)
        "dispatched",
        "errors",
        # SnapshotStore (repro/store/store.py)
        "attaches",
        "builds",
        "persists",
        "mismatches",
        "invalid",
        # Gateway (repro/server/app.py)
        "requests",
        "rejections",
        "deadline_exceeded",
        "degraded",
        "unavailable",
        # ReplicaSet / ReplicaHealth (repro/server/replicas.py, resilience.py)
        "replicas",
        "failovers",
        "replica_failures",
        "ejections",
        "readmissions",
        # GatewayClient (repro/server/client.py)
        "retries",
        # Tracer (repro/obs/tracing.py)
        "traces_started",
        "traces_finished",
        "traces_retained",
        # SlowQueryLog (repro/obs/slowlog.py)
        "slow_offered",
        "slow_retained",
        "slow_evicted",
        # MetricsRegistry itself
        "scrapes",
        "source_errors",
    }
)

#: Registry-internal counter names, in reporting order.
REGISTRY_COUNTER_NAMES = ("scrapes", "source_errors")

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_BAD_CHAR = re.compile(r"[^a-zA-Z0-9_:]")

Labels = Tuple[Tuple[str, str], ...]


def _clean_name(name: str) -> str:
    """A valid Prometheus metric name (invalid characters -> ``_``)."""
    if _NAME_OK.match(name):
        return name
    cleaned = _BAD_CHAR.sub("_", str(name))
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _labels_of(labels: Dict[str, object]) -> Labels:
    pairs = []
    for key in sorted(labels):
        label = key if _LABEL_OK.match(key) else _BAD_CHAR.sub("_", key)
        pairs.append((label, str(labels[key])))
    return tuple(pairs)


@dataclass(frozen=True)
class Sample:
    """One exposition row: a named value (or histogram) with labels."""

    name: str
    value: float = 0.0
    labels: Labels = ()
    kind: str = "counter"  # "counter" | "gauge" | "histogram"
    help: str = ""
    #: ``LatencyHistogram.snapshot()``-shaped payload for ``kind="histogram"``
    #: (per-bucket counts; the renderer cumulates for ``le``).
    histogram: Optional[Dict[str, object]] = field(default=None, compare=False)


def counter_samples(
    prefix: str,
    counters: Dict[str, object],
    labels: Optional[Dict[str, object]] = None,
    help: str = "",
) -> List[Sample]:
    """One counter sample per dict entry: ``bcc_<prefix>_<key>_total``."""
    label_pairs = _labels_of(labels or {})
    samples = []
    for key in sorted(counters):
        value = counters[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        samples.append(
            Sample(
                name=_clean_name(f"bcc_{prefix}_{key}_total"),
                value=float(value),
                labels=label_pairs,
                kind="counter",
                help=help,
            )
        )
    return samples


class Counter:
    """A monotonically increasing owned metric."""

    def __init__(self, name: str, help: str = "", labels: Labels = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> Sample:
        return Sample(
            name=self.name,
            value=self.value(),
            labels=self.labels,
            kind="counter",
            help=self.help,
        )


class Gauge:
    """An owned metric that can go up and down."""

    def __init__(self, name: str, help: str = "", labels: Labels = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> Sample:
        return Sample(
            name=self.name,
            value=self.value(),
            labels=self.labels,
            kind="gauge",
            help=self.help,
        )


class Histogram:
    """An owned latency histogram (a labeled ``LatencyHistogram``)."""

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Labels = (),
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        # Imported here, not at module level: repro.serving.stats imports
        # the engine package, which itself imports repro.obs.tracing — a
        # module-level import would be circular.  repro.obs stays
        # stdlib-only at import time.
        from repro.serving.stats import LatencyHistogram

        self._histogram = (
            LatencyHistogram(bounds) if bounds is not None else LatencyHistogram()
        )

    def observe(self, seconds: float) -> None:
        self._histogram.observe(seconds)

    def snapshot(self) -> Dict[str, object]:
        return self._histogram.snapshot()

    def sample(self) -> Sample:
        return Sample(
            name=self.name,
            labels=self.labels,
            kind="histogram",
            help=self.help,
            histogram=self.snapshot(),
        )


class MetricsRegistry:
    """Sources + owned metrics behind one ``collect()`` / text exposition.

    Locking: ``_sources``, ``_owned`` and ``_counters`` only under
    ``_lock`` (leaf — supplier callables run *outside* the lock, so a slow
    snapshot never blocks registration).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sources: "OrderedDict[str, Callable[[], Iterable[Sample]]]" = (
            OrderedDict()
        )
        self._owned: "OrderedDict[Tuple[str, Labels], object]" = OrderedDict()
        self._counters: Dict[str, int] = {
            name: 0 for name in REGISTRY_COUNTER_NAMES
        }

    # -- internal counters ---------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def counters_snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    # -- sources ---------------------------------------------------------
    def register_source(
        self, source_id: str, supplier: Callable[[], Iterable[Sample]]
    ) -> None:
        """Register (or replace) a sample source under ``source_id``."""
        if not callable(supplier):
            raise TypeError("a metrics source must be callable")
        with self._lock:
            self._sources[source_id] = supplier

    def unregister_source(self, source_id: str) -> None:
        with self._lock:
            self._sources.pop(source_id, None)

    def register_counters(
        self,
        source_id: str,
        prefix: str,
        supplier: Callable[[], Dict[str, object]],
        help: str = "",
        **labels: object,
    ) -> None:
        """Sugar: register a counter-dict supplier as a source."""

        def _source() -> List[Sample]:
            return counter_samples(prefix, supplier(), labels, help)

        self.register_source(source_id, _source)

    def sources(self) -> List[str]:
        with self._lock:
            return list(self._sources)

    # -- owned metrics ---------------------------------------------------
    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        """Get-or-create an owned counter (idempotent per name+labels)."""
        return self._get_owned(Counter, name, help, _labels_of(labels))

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        return self._get_owned(Gauge, name, help, _labels_of(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        key = (_clean_name(name), _labels_of(labels))
        with self._lock:
            metric = self._owned.get(key)
            if metric is None:
                metric = Histogram(key[0], help, key[1], bounds=bounds)
                self._owned[key] = metric
        if not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def _get_owned(self, cls, name: str, help: str, labels: Labels):
        key = (_clean_name(name), labels)
        with self._lock:
            metric = self._owned.get(key)
            if metric is None:
                metric = cls(key[0], help, labels)
                self._owned[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    # -- collection ------------------------------------------------------
    def collect(self) -> List[Sample]:
        """Every sample: owned metrics first, then sources in order.

        A raising source is skipped (and counted in ``source_errors``) —
        one broken snapshot must not take down the whole ``/metrics``
        endpoint.  The registry's own counters are always appended.
        """
        self._count("scrapes")
        with self._lock:
            owned = list(self._owned.values())
            suppliers = list(self._sources.items())
        samples: List[Sample] = [metric.sample() for metric in owned]
        for source_id, supplier in suppliers:
            try:
                rows = list(supplier())
            except Exception:
                self._count("source_errors")
                continue
            samples.extend(row for row in rows if isinstance(row, Sample))
        samples.extend(
            counter_samples(
                "obs_registry",
                self.counters_snapshot(),
                help="metrics registry self-counters",
            )
        )
        return samples

    def snapshot(self) -> Dict[str, object]:
        """The ``/stats`` ``metrics`` block: a summary, not the samples."""
        samples = self.collect()
        names = sorted({sample.name for sample in samples})
        return {
            "sources": self.sources(),
            "series": len(samples),
            "names": names,
            "counters": self.counters_snapshot(),
        }

    def render_prometheus(self) -> str:
        """The ``GET /metrics`` body (Prometheus text exposition 0.0.4)."""
        samples = self.collect()
        by_name: "OrderedDict[str, List[Sample]]" = OrderedDict()
        for sample in samples:
            by_name.setdefault(sample.name, []).append(sample)
        lines: List[str] = []
        for name, rows in by_name.items():
            first = rows[0]
            if first.help:
                lines.append(f"# HELP {name} {_escape_help(first.help)}")
            lines.append(f"# TYPE {name} {first.kind}")
            for row in rows:
                if row.kind == "histogram" and row.histogram is not None:
                    _render_histogram(lines, name, row)
                else:
                    lines.append(
                        f"{name}{_render_labels(row.labels)} "
                        f"{_format_value(row.value)}"
                    )
        return "\n".join(lines) + "\n"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: Labels, extra: Labels = ()) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label(value)}"' for key, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: object) -> str:
    if bound == "inf":
        return "+Inf"
    return _format_value(float(bound))  # type: ignore[arg-type]


def _render_histogram(lines: List[str], name: str, row: Sample) -> None:
    """Emit ``_bucket``/``_sum``/``_count`` rows with cumulative ``le``.

    The snapshot's buckets carry per-bucket counts (the JSON ``/stats``
    shape); Prometheus ``le`` buckets are cumulative, hence the running
    total here.
    """
    snapshot = row.histogram or {}
    running = 0
    for bucket in snapshot.get("buckets", ()):
        running += int(bucket.get("count", 0))
        le = _format_bound(bucket.get("le"))
        lines.append(
            f"{name}_bucket"
            f"{_render_labels(row.labels, (('le', le),))} {running}"
        )
    lines.append(
        f"{name}_sum{_render_labels(row.labels)} "
        f"{_format_value(float(snapshot.get('sum_seconds', 0.0)))}"
    )
    lines.append(
        f"{name}_count{_render_labels(row.labels)} "
        f"{int(snapshot.get('count', 0))}"
    )
