"""End-to-end observability: tracing, metrics, and slow-query capture.

Three pieces, one bundle:

* :mod:`repro.obs.tracing` — request-scoped span trees riding
  contextvars (off by default, near-zero cost when off);
* :mod:`repro.obs.metrics` — a unified :class:`MetricsRegistry` every
  ad-hoc counter registers into, rendered as Prometheus text at
  ``GET /metrics``;
* :mod:`repro.obs.slowlog` — a bounded ring buffer of traces that
  crossed a threshold, dumped at ``GET /debug/slow`` and pretty-printed
  by ``python -m repro.obs``.

:class:`Observability` wires the three together.  A
:class:`~repro.serving.directory.GraphDirectory` builds one by default
(metrics always scrapeable; tracing stays off until
``directory.observability.tracer.enable()``), and the HTTP gateway
adopts its directory's bundle so ``/metrics``, ``/debug/slow`` and the
``/stats`` ``trace``/``metrics`` blocks all read the same state.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.obs.metrics import (
    Counter,
    EXPORTED_COUNTERS,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    counter_samples,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import (
    Span,
    Trace,
    Tracer,
    current_span,
    current_trace,
    format_trace,
    span,
)

__all__ = [
    "Counter",
    "EXPORTED_COUNTERS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Sample",
    "SlowQueryLog",
    "Span",
    "Trace",
    "Tracer",
    "counter_samples",
    "current_span",
    "current_trace",
    "format_trace",
    "span",
]

#: Default slow-query threshold (ms) and ring capacity.
DEFAULT_SLOW_THRESHOLD_MS = 100.0
DEFAULT_SLOW_CAPACITY = 64


class Observability:
    """One process's observability bundle: tracer + registry + slow log.

    ``trace=False`` (the default) keeps tracing off; the registry is
    always live — registering sources costs nothing until scraped.
    """

    def __init__(
        self,
        *,
        trace: bool = False,
        slow_threshold_ms: float = DEFAULT_SLOW_THRESHOLD_MS,
        slow_capacity: int = DEFAULT_SLOW_CAPACITY,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.slow_log = SlowQueryLog(
            threshold_ms=slow_threshold_ms, capacity=slow_capacity
        )
        self.tracer = Tracer(enabled=trace, clock=clock, slow_log=self.slow_log)
        self.registry = MetricsRegistry()
        self.registry.register_source("obs", self._samples)

    # -- stats blocks ----------------------------------------------------
    def trace_block(self) -> Dict[str, object]:
        """The ``/stats`` ``trace`` block."""
        return {
            "enabled": self.tracer.enabled,
            "slow_threshold_ms": self.slow_log.threshold_ms,
            "slow_capacity": self.slow_log.capacity,
            "slow_retained": len(self.slow_log),
            "counters": {
                **self.tracer.counters_snapshot(),
                **self.slow_log.counters_snapshot(),
            },
        }

    def metrics_block(self) -> Dict[str, object]:
        """The ``/stats`` ``metrics`` block."""
        return self.registry.snapshot()

    # -- own metrics source ---------------------------------------------
    def _samples(self):
        samples = counter_samples(
            "obs_tracer",
            self.tracer.counters_snapshot(),
            help="request tracer counters",
        )
        samples.extend(
            counter_samples(
                "obs_slowlog",
                self.slow_log.counters_snapshot(),
                help="slow-query log counters",
            )
        )
        samples.append(
            Sample(
                name="bcc_obs_slowlog_retained",
                value=float(len(self.slow_log)),
                kind="gauge",
                help="traces currently retained in the slow-query ring",
            )
        )
        samples.append(
            Sample(
                name="bcc_obs_tracing_enabled",
                value=1.0 if self.tracer.enabled else 0.0,
                kind="gauge",
                help="1 when request tracing is enabled",
            )
        )
        return samples
