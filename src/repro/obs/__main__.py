"""``python -m repro.obs`` — pretty-print slow-query traces as span trees.

Input is the ``GET /debug/slow`` document (or any JSON holding either a
single trace, a list of traces, or a ``{"traces": [...]}`` wrapper)::

    # from a file (or "-" for stdin)
    python -m repro.obs slow.json
    curl -s http://127.0.0.1:8080/debug/slow | python -m repro.obs -

    # straight from a running gateway
    python -m repro.obs --url http://127.0.0.1:8080/debug/slow

Each trace renders as an indented tree: one line per span with its
duration, ``(unfinished)`` markers for spans still running when the trace
ended (the span that consumed a deadline budget), and span metadata.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

from repro.obs.tracing import format_trace


def _traces_of(document: object) -> List[Dict[str, object]]:
    """Trace documents from any of the accepted input shapes."""
    if isinstance(document, dict):
        if isinstance(document.get("traces"), list):
            return [t for t in document["traces"] if isinstance(t, dict)]
        return [document]
    if isinstance(document, list):
        return [t for t in document if isinstance(t, dict)]
    raise SystemExit("input is not a trace document (dict or list expected)")


def _read_source(path: str, url: str) -> object:
    if url:
        from urllib.request import urlopen

        with urlopen(url, timeout=30.0) as response:
            return json.loads(response.read().decode("utf-8"))
    if path == "-":
        return json.load(sys.stdin)
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Pretty-print slow-query trace documents as span trees.",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default="-",
        help="JSON file holding a /debug/slow document ('-' = stdin)",
    )
    parser.add_argument(
        "--url",
        default="",
        help="fetch the document from a gateway URL instead of a file",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="print at most N traces (newest first in /debug/slow order)",
    )
    args = parser.parse_args(argv)

    document = _read_source(args.path, args.url)
    traces = _traces_of(document)
    if isinstance(document, dict) and "threshold_ms" in document:
        print(
            f"slow-query log: {len(traces)} retained "
            f"(threshold {document['threshold_ms']}ms, "
            f"capacity {document.get('capacity', '?')})"
        )
    if args.limit is not None:
        traces = traces[: max(0, args.limit)]
    for index, trace in enumerate(traces):
        if index:
            print()
        print(format_trace(trace))
    if not traces:
        print("no traces retained")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
