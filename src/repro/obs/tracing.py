"""Request-scoped tracing: a tree of timed spans riding contextvars.

A :class:`Trace` is one request's timing story — a tree of :class:`Span`
nodes keyed by the gateway's ``X-Request-Id`` — built *without* plumbing a
trace object through every call signature.  The active span lives in a
``contextvars.ContextVar``; any layer that wants to time a phase writes::

    from repro.obs.tracing import span

    with span("engine.kernel", method=query.method):
        result = runner(...)

and the call is **free when no trace is active**: :func:`span` then returns
a shared no-op context manager after a single ``ContextVar.get`` — that is
the entire disabled-path cost, which ``benchmarks/bench_obs_overhead.py``
measures (floor: <= 3% overhead on a batch trace).

Thread hops do not propagate contextvars by themselves.  The two places
the serving stack hops threads — ``run_with_deadline``'s watchdog thread
and ``serve_batch``'s executor — explicitly carry the caller's context
across with ``contextvars.copy_context()``, so a deadline-exceeded query's
trace retains the still-running kernel span (marked ``unfinished``) that
consumed the budget.  Process hops carry a trace-context field in the wire
codec instead; the worker builds a local :class:`Trace` and ships its span
tree back to be grafted via :meth:`Span.attach_remote`.

Clock hygiene (BCC002 covers this package): span timing uses
``time.perf_counter`` through an injectable ``clock=`` parameter default —
tests drive fake clocks, and ``perf_counter`` never gates behavior.
"""

from __future__ import annotations

import contextvars
import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "TRACER_COUNTER_NAMES",
    "current_span",
    "current_trace",
    "format_trace",
    "span",
]

#: The active span of the current logical request (``None`` = tracing off
#: for this context — the common case, and the fast path).
_ACTIVE_SPAN: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_active_span", default=None
)

#: Tracer counter names, in reporting order.
TRACER_COUNTER_NAMES = ("traces_started", "traces_finished", "traces_retained")


class _NullSpan:
    """The shared do-nothing span handed out when no trace is active.

    It answers the whole :class:`Span` surface with no-ops (returning
    itself where a span is expected), so instrumented call sites never
    branch on "is tracing on?" — they just use whatever :func:`span`
    handed them.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def annotate(self, **meta: object) -> "_NullSpan":
        return self

    def child(self, name: str, **meta: object) -> "_NullSpan":
        return self

    def finish(self) -> "_NullSpan":
        return self

    def attach_remote(self, payload: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


def current_span() -> Optional["Span"]:
    """The active span in this context (``None`` when tracing is off)."""
    return _ACTIVE_SPAN.get()


def current_trace() -> Optional["Trace"]:
    """The active trace in this context (``None`` when tracing is off)."""
    active = _ACTIVE_SPAN.get()
    return active.trace if active is not None else None


def span(name: str, **meta: object):
    """A context manager timing ``name`` under the active span.

    With no active trace this returns a shared no-op after one
    ``ContextVar.get`` — the documented disabled-path cost.  Inside the
    ``with`` block the new span is the active span, so nested ``span()``
    calls build the tree.
    """
    parent = _ACTIVE_SPAN.get()
    if parent is None:
        return _NULL_SPAN
    return Span(parent.trace, parent, name, meta)


class Span:
    """One timed node of a trace tree.

    Spans start at construction.  Used as a context manager they activate
    themselves for the block and finish on exit; used manually (the pool's
    dispatch path, where send and reply are separate events) the caller
    holds the object and calls :meth:`finish`.
    """

    __slots__ = (
        "trace",
        "name",
        "meta",
        "children",
        "start_seconds",
        "end_seconds",
        "_remote",
        "_token",
    )

    def __init__(
        self,
        trace: "Trace",
        parent: Optional["Span"],
        name: str,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        self.trace = trace
        self.name = name
        self.meta: Dict[str, object] = dict(meta) if meta else {}
        self.children: List["Span"] = []
        self.start_seconds = trace.now()
        self.end_seconds: Optional[float] = None
        self._remote: List[Dict[str, object]] = []
        self._token = None
        if parent is not None:
            with trace._lock:
                parent.children.append(self)

    # -- lifecycle -----------------------------------------------------
    def child(self, name: str, **meta: object) -> "Span":
        """Open a manually-managed child span (caller must finish it)."""
        return Span(self.trace, self, name, meta)

    def annotate(self, **meta: object) -> "Span":
        """Attach key/value metadata (JSON-safe scalars) to this span."""
        with self.trace._lock:
            self.meta.update(meta)
        return self

    def finish(self) -> "Span":
        """Stamp the end time (idempotent: the first finish wins)."""
        with self.trace._lock:
            if self.end_seconds is None:
                self.end_seconds = self.trace.now()
        return self

    def attach_remote(self, payload: object) -> None:
        """Graft a worker-reported span-tree payload under this span.

        ``payload`` is a list of already-JSON-safe span dicts (the shape
        :meth:`to_dict` emits), produced in another process and shipped
        back on the reply — it is stored as-is and merged into this
        span's ``children`` at :meth:`to_dict` time.
        """
        if not isinstance(payload, list):
            return
        with self.trace._lock:
            self._remote.extend(
                entry for entry in payload if isinstance(entry, dict)
            )

    @property
    def finished(self) -> bool:
        return self.end_seconds is not None

    def duration_seconds(self, cutoff: Optional[float] = None) -> float:
        """Elapsed seconds; unfinished spans run to ``cutoff`` (or now)."""
        end = self.end_seconds
        if end is None:
            end = cutoff if cutoff is not None else self.trace.now()
        return max(0.0, end - self.start_seconds)

    # -- context-manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        self._token = _ACTIVE_SPAN.set(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        self.finish()
        if self._token is not None:
            _ACTIVE_SPAN.reset(self._token)
            self._token = None
        return False

    # -- payload -------------------------------------------------------
    def to_dict(self, cutoff: Optional[float] = None) -> Dict[str, object]:
        """The JSON-safe span subtree (milliseconds, depth-first)."""
        with self.trace._lock:
            children = list(self.children)
            remote = list(self._remote)
            meta = dict(self.meta)
            end = self.end_seconds
        unfinished = end is None
        duration = self.duration_seconds(cutoff)
        payload: Dict[str, object] = {
            "name": self.name,
            "start_ms": round(self.start_seconds * 1000.0, 6),
            "duration_ms": round(duration * 1000.0, 6),
        }
        if unfinished:
            payload["unfinished"] = True
        if meta:
            payload["meta"] = meta
        child_payloads = [child.to_dict(cutoff) for child in children]
        child_payloads.extend(remote)
        if child_payloads:
            payload["children"] = child_payloads
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.end_seconds is None else "closed"
        return f"Span({self.name!r}, {state})"


class Trace:
    """One request's span tree, keyed by its ``X-Request-Id``.

    A trace is also a context manager: entering activates its root span in
    the current context, exiting finishes the root and fires the optional
    ``on_finish`` callback (the :class:`Tracer` uses it to feed the slow
    log).  Times are seconds relative to the trace's start on its own
    injectable clock, so traces built on fake clocks are deterministic.
    """

    __slots__ = (
        "request_id",
        "root",
        "on_finish",
        "_clock",
        "_epoch",
        "_lock",
        "_token",
    )

    def __init__(
        self,
        request_id: str,
        name: str = "request",
        clock: Callable[[], float] = time.perf_counter,
        on_finish: Optional[Callable[["Trace"], None]] = None,
        **meta: object,
    ) -> None:
        self.request_id = request_id
        self.on_finish = on_finish
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._token = None
        self.root = Span(self, None, name, meta)

    def now(self) -> float:
        """Seconds since this trace started (on the trace's clock)."""
        return self._clock() - self._epoch

    def finish(self) -> "Trace":
        self.root.finish()
        return self

    @property
    def finished(self) -> bool:
        return self.root.finished

    def duration_seconds(self) -> float:
        return self.root.duration_seconds()

    def __enter__(self) -> "Trace":
        self._token = _ACTIVE_SPAN.set(self.root)
        return self

    def __exit__(self, *exc_info) -> bool:
        self.finish()
        if self._token is not None:
            _ACTIVE_SPAN.reset(self._token)
            self._token = None
        if self.on_finish is not None:
            self.on_finish(self)
        return False

    def to_dict(self) -> Dict[str, object]:
        """The JSON-safe trace document (the slow-log entry shape)."""
        cutoff = self.root.end_seconds
        return {
            "request_id": self.request_id,
            "duration_ms": round(self.duration_seconds() * 1000.0, 6),
            "spans": self.root.to_dict(cutoff),
        }

    def span_payload(self) -> List[Dict[str, object]]:
        """The root subtree as a wire-safe list (worker replies ship this)."""
        return [self.root.to_dict(self.root.end_seconds)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace({self.request_id!r}, spans={self.root.name!r})"


class Tracer:
    """The tracing switchboard: off by default, owned by an Observability.

    ``trace(request_id)`` returns a no-op context manager while disabled
    (yielding ``None``) and a live :class:`Trace` once enabled; finished
    traces are offered to the attached slow log.  Counters ride the
    metrics registry through :meth:`counters_snapshot`.

    Locking: ``_counters`` only under ``_lock`` (leaf; nothing else is
    acquired while held).
    """

    def __init__(
        self,
        enabled: bool = False,
        clock: Callable[[], float] = time.perf_counter,
        slow_log: Optional[object] = None,
    ) -> None:
        self._enabled = bool(enabled)
        self._clock = clock
        self._slow_log = slow_log
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            name: 0 for name in TRACER_COUNTER_NAMES
        }

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> "Tracer":
        self._enabled = True
        return self

    def disable(self) -> "Tracer":
        self._enabled = False
        return self

    def _count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def counters_snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def trace(self, request_id: str, name: str = "request", **meta: object):
        """A context manager yielding the request's :class:`Trace`.

        Disabled (the default): yields the shared no-op span and records
        nothing.
        """
        if not self._enabled:
            return _NULL_SPAN
        self._count("traces_started")
        return Trace(
            request_id,
            name=name,
            clock=self._clock,
            on_finish=self._finished,
            **meta,
        )

    def _finished(self, trace: Trace) -> None:
        self._count("traces_finished")
        if self._slow_log is not None and self._slow_log.offer(trace):
            self._count("traces_retained")


def _format_span(
    payload: Dict[str, object], indent: int, lines: List[str]
) -> None:
    duration = payload.get("duration_ms")
    suffix = " (unfinished)" if payload.get("unfinished") else ""
    meta = payload.get("meta") or {}
    meta_text = (
        " ".join(f"{key}={meta[key]!r}" for key in sorted(meta)) if meta else ""
    )
    lines.append(
        "  " * indent
        + f"{payload.get('name', '?')}  {duration:.3f}ms{suffix}"
        + (f"  [{meta_text}]" if meta_text else "")
    )
    for child in payload.get("children") or []:
        if isinstance(child, dict):
            _format_span(child, indent + 1, lines)


def format_trace(payload: Dict[str, object]) -> str:
    """Pretty-print one trace document (the ``to_dict`` shape) as a tree."""
    lines = [
        f"request {payload.get('request_id', '?')}  "
        f"{payload.get('duration_ms', 0.0):.3f}ms"
    ]
    spans = payload.get("spans")
    if isinstance(spans, dict):
        _format_span(spans, 1, lines)
    return "\n".join(lines)
