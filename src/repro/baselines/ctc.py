"""CTC baseline: closest truss community search (Huang et al., PVLDB 2015).

The paper compares BCC search against CTC [20], which ignores vertex labels
entirely: it finds a connected k-truss containing all query vertices with the
**largest** trussness ``k`` and then, like Algorithm 1, greedily removes the
vertex farthest from the query set while maintaining the k-truss, returning
the intermediate graph with the smallest query distance (a 2-approximation of
the minimum-diameter closest truss community).

This is a faithful reimplementation of the algorithmic skeleton the original
paper describes (find the maximal connected k-truss with maximum k, then
iterative peeling by query distance with truss maintenance); the elaborate
bulk-deletion/locality optimisations of the original system are not needed at
the scales used here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.ktruss import (
    k_truss_containing,
    maintain_k_truss,
    max_truss_value_containing,
)
from repro.eval.instrumentation import SearchInstrumentation
from repro.exceptions import (
    REASON_NO_COMMUNITY,
    REASON_NO_TRUSS,
    EmptyCommunityError,
)
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import (
    are_connected,
    farthest_vertices,
    graph_query_distance,
    query_distances,
)


@dataclass
class CTCResult:
    """A closest-truss community."""

    community: LabeledGraph
    trussness: int
    query_distance: float
    iterations: int = 0
    statistics: Dict[str, float] = field(default_factory=dict)

    def num_vertices(self) -> int:
        """Number of vertices in the community."""
        return self.community.num_vertices()

    @property
    def vertices(self) -> Set[Vertex]:
        """All community vertices."""
        return set(self.community.vertices())


def ctc_search(
    graph: LabeledGraph,
    query_vertices: Sequence[Vertex],
    k: Optional[int] = None,
    bulk_deletion: bool = True,
    max_iterations: Optional[int] = None,
    instrumentation: Optional[SearchInstrumentation] = None,
) -> Optional[CTCResult]:
    """Run the closest truss community search.

    Parameters
    ----------
    graph:
        The input graph (labels are ignored by this baseline).
    query_vertices:
        The query set Q (the BCC experiments use the same two vertices).
    k:
        Trussness to use; defaults to the largest ``k`` for which a connected
        k-truss containing all query vertices exists.
    bulk_deletion:
        Remove every farthest vertex per iteration (default, matching the
        experimental setting of the BCC paper) or only one.
    max_iterations:
        Optional cap on peeling iterations.
    instrumentation:
        Optional counters.
    """
    from repro.api import SearchConfig, one_shot_search

    config = SearchConfig(
        k=k, bulk_deletion=bulk_deletion, max_iterations=max_iterations
    )
    return one_shot_search(
        "ctc", graph, tuple(query_vertices), config, instrumentation
    )


def run_ctc(
    graph: LabeledGraph,
    query_vertices: Sequence[Vertex],
    k: Optional[int] = None,
    bulk_deletion: bool = True,
    max_iterations: Optional[int] = None,
    instrumentation: Optional[SearchInstrumentation] = None,
) -> CTCResult:
    """CTC implementation registered as method ``"ctc"``.

    Parameters match :func:`ctc_search`; raises :class:`EmptyCommunityError`
    with a machine-readable ``reason`` instead of returning ``None``.
    """
    inst = instrumentation if instrumentation is not None else SearchInstrumentation()
    query = list(query_vertices)
    graph.require_vertices(query)

    if k is None:
        k = max_truss_value_containing(graph, query)
        if k < 2:
            raise EmptyCommunityError(
                "no connected k-truss with k >= 2 contains the query",
                reason=REASON_NO_TRUSS,
            )

    candidate = k_truss_containing(graph, k, query)
    if candidate is None:
        raise EmptyCommunityError(
            f"no connected {k}-truss contains the query", reason=REASON_NO_TRUSS
        )

    community = candidate.copy()
    # Truss maintenance removes individual edges, so intermediate graphs are
    # not induced subgraphs of the candidate; snapshot the best graph instead.
    best_snapshot: Optional[LabeledGraph] = None
    best_distance = math.inf
    iterations = 0

    while True:
        with inst.time_query_distance():
            distance_maps = query_distances(community, query)
            current_distance = graph_query_distance(community, query, distance_maps)
        if current_distance < best_distance:
            best_distance = current_distance
            best_snapshot = community.copy()
        candidates, max_distance = farthest_vertices(community, query, distance_maps)
        if not candidates or max_distance <= 0:
            break
        if max_iterations is not None and iterations >= max_iterations:
            break
        to_delete = candidates if bulk_deletion else [candidates[0]]
        maintain_k_truss(community, k, to_delete)
        iterations += 1
        inst.record_iteration(deleted=len(to_delete))
        if any(q not in community for q in query):
            break
        if not are_connected(community, query):
            break

    if best_snapshot is None:
        raise EmptyCommunityError(reason=REASON_NO_COMMUNITY)
    return CTCResult(
        community=best_snapshot,
        trussness=k,
        query_distance=best_distance,
        iterations=iterations,
        statistics=inst.as_dict(),
    )
