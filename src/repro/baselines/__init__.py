"""Baseline community-search models the paper compares against (CTC and PSA)."""

from repro.baselines.ctc import CTCResult, ctc_search
from repro.baselines.psa import PSAResult, psa_search

__all__ = ["CTCResult", "PSAResult", "ctc_search", "psa_search"]
