"""PSA baseline: progressive minimum k-core search (Li et al., PVLDB 2019).

The second experimental competitor of the paper, PSA [23], searches for a
*small* (ideally minimum-size) connected k-core containing the query
vertices, ignoring vertex labels.  Finding the true minimum k-core is NP-hard,
so the original work progressively tightens lower/upper bounds; what matters
for the comparison in the BCC paper is the qualitative behaviour — PSA
returns a compact, label-agnostic k-core around the query.

This module implements the standard expand-then-shrink heuristic that
preserves that behaviour (documented as a substitution in DESIGN.md):

1. **Expansion**: grow a candidate set from the query vertices in best-first
   order (preferring high-coreness vertices close to the query) until the
   candidate's induced subgraph contains a connected k-core spanning the
   query, or a size budget is exhausted.
2. **Shrinking**: extract that k-core, then repeatedly try to drop the vertex
   farthest from the query set while keeping a connected k-core containing
   the query, yielding a small final community.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.kcore import core_decomposition, k_core_vertices, max_core_value_containing
from repro.eval.instrumentation import SearchInstrumentation
from repro.exceptions import (
    REASON_NO_CORE,
    EmptyCommunityError,
)
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import are_connected, bfs_distances, connected_component


#: Default expansion / shrinking budgets (shared with SearchConfig).
DEFAULT_SIZE_BUDGET = 2000
DEFAULT_SHRINK_ROUNDS = 50


@dataclass
class PSAResult:
    """A (small) connected k-core community containing the query vertices."""

    community: LabeledGraph
    k: int
    query_distance: float = 0.0
    expansions: int = 0
    statistics: Dict[str, float] = field(default_factory=dict)

    def num_vertices(self) -> int:
        """Number of vertices in the community."""
        return self.community.num_vertices()

    @property
    def vertices(self) -> Set[Vertex]:
        """All community vertices."""
        return set(self.community.vertices())


def _connected_k_core_containing(
    graph: LabeledGraph, vertices: Set[Vertex], k: int, query: Sequence[Vertex]
) -> Optional[LabeledGraph]:
    """Return the connected k-core of ``vertices`` containing the query, if any."""
    candidate = graph.induced_subgraph(vertices)
    survivors = k_core_vertices(candidate, k)
    if not survivors or any(q not in survivors for q in query):
        return None
    core = candidate.induced_subgraph(survivors)
    component = connected_component(core, query[0])
    if any(q not in component for q in query):
        return None
    return core.induced_subgraph(component)


def psa_search(
    graph: LabeledGraph,
    query_vertices: Sequence[Vertex],
    k: Optional[int] = None,
    size_budget: int = DEFAULT_SIZE_BUDGET,
    shrink_rounds: int = DEFAULT_SHRINK_ROUNDS,
    instrumentation: Optional[SearchInstrumentation] = None,
) -> Optional[PSAResult]:
    """Run the progressive minimum k-core search heuristic.

    Parameters
    ----------
    graph:
        The input graph (labels ignored).
    query_vertices:
        The query set Q.
    k:
        Core parameter; defaults to the smallest coreness among the query
        vertices (the largest value for which a common k-core can exist).
    size_budget:
        Maximum number of vertices explored during expansion.
    shrink_rounds:
        Maximum number of farthest-vertex removal attempts during shrinking.
    instrumentation:
        Optional counters.
    """
    from repro.api import SearchConfig, one_shot_search

    config = SearchConfig(k=k, size_budget=size_budget, shrink_rounds=shrink_rounds)
    return one_shot_search(
        "psa", graph, tuple(query_vertices), config, instrumentation
    )


def run_psa(
    graph: LabeledGraph,
    query_vertices: Sequence[Vertex],
    k: Optional[int] = None,
    size_budget: int = DEFAULT_SIZE_BUDGET,
    shrink_rounds: int = DEFAULT_SHRINK_ROUNDS,
    instrumentation: Optional[SearchInstrumentation] = None,
) -> PSAResult:
    """PSA implementation registered as method ``"psa"``.

    Parameters match :func:`psa_search`; raises :class:`EmptyCommunityError`
    with a machine-readable ``reason`` instead of returning ``None``.
    """
    inst = instrumentation if instrumentation is not None else SearchInstrumentation()
    query = list(query_vertices)
    graph.require_vertices(query)
    if k is None:
        k = min(max_core_value_containing(graph, q) for q in query)
        if k <= 0:
            raise EmptyCommunityError(
                "the query vertices share no k-core with k >= 1",
                reason=REASON_NO_CORE,
            )

    coreness = core_decomposition(graph)
    # Distances from the query set guide the best-first expansion.
    distance_maps = [bfs_distances(graph, q) for q in query]

    def query_distance(v: Vertex) -> float:
        worst = 0.0
        for dmap in distance_maps:
            if v not in dmap:
                return math.inf
            worst = max(worst, dmap[v])
        return worst

    counter = itertools.count()
    candidate: Set[Vertex] = set(query)
    heap: List = []
    seen: Set[Vertex] = set(query)

    def push_neighbors(vertex: Vertex) -> None:
        # Sorted iteration: adjacency sets iterate in memory-layout order,
        # which differs between equal graphs (e.g. a full graph and the
        # same component served as a shard subgraph).  The expansion's
        # tie-break counter must depend on the graph's *content* only, or
        # PSA returns different communities for identical inputs.
        for w in sorted(graph.neighbors(vertex), key=repr):
            if w in seen:
                continue
            seen.add(w)
            priority = (query_distance(w), -coreness.get(w, 0), next(counter))
            heapq.heappush(heap, (priority, w))

    for q in query:
        push_neighbors(q)

    best_core: Optional[LabeledGraph] = None
    expansions = 0
    check_interval = max(4, 2 * k)
    since_last_check = 0
    while heap and len(candidate) < size_budget:
        (_, vertex) = heapq.heappop(heap)
        candidate.add(vertex)
        push_neighbors(vertex)
        expansions += 1
        since_last_check += 1
        if since_last_check >= check_interval:
            since_last_check = 0
            core = _connected_k_core_containing(graph, candidate, k, query)
            if core is not None:
                best_core = core
                break
    if best_core is None:
        best_core = _connected_k_core_containing(graph, candidate, k, query)
    if best_core is None:
        # Fall back to the global connected k-core around the query.
        best_core = _connected_k_core_containing(graph, set(graph.vertices()), k, query)
        if best_core is None:
            raise EmptyCommunityError(
                f"no connected {k}-core contains every query vertex",
                reason=REASON_NO_CORE,
            )

    # Shrinking: repeatedly try to drop the farthest vertex.
    community = best_core
    for _ in range(shrink_rounds):
        if community.num_vertices() <= len(query):
            break
        dmaps = [bfs_distances(community, q) for q in query]

        def qd(v: Vertex) -> float:
            worst = 0.0
            for dmap in dmaps:
                if v not in dmap:
                    return math.inf
                worst = max(worst, dmap[v])
            return worst

        # Sorted for the same reason as the expansion: ``max`` keeps the
        # first maximum it meets, so vertex iteration order (memory layout)
        # must not decide which of two equally-far vertices is dropped.
        removable = sorted(
            (v for v in community.vertices() if v not in query), key=repr
        )
        if not removable:
            break
        farthest = max(removable, key=qd)
        if qd(farthest) <= 0:
            break
        remaining = set(community.vertices()) - {farthest}
        shrunk = _connected_k_core_containing(community, remaining, k, query)
        if shrunk is None or shrunk.num_vertices() >= community.num_vertices():
            break
        community = shrunk
        inst.record_iteration(deleted=1)

    final_dmaps = [bfs_distances(community, q) for q in query]
    worst = 0.0
    for v in community.vertices():
        for dmap in final_dmaps:
            if v not in dmap:
                worst = math.inf
            else:
                worst = max(worst, dmap[v])
    inst.add("expansions", float(expansions))
    return PSAResult(
        community=community,
        k=k,
        query_distance=worst,
        expansions=expansions,
        statistics=inst.as_dict(),
    )
