#!/usr/bin/env python
"""Persistent index store: instant restarts and bounded-memory shard spill.

The serving quickstart one operational level up: the process owns a
snapshot store on disk, so restarting it costs an mmap attach instead of a
CSR freeze + core decomposition + butterfly-index build.  The script

1. hosts a Baidu-like graph in a :class:`repro.serving.GraphDirectory`
   backed by a :class:`repro.store.SnapshotStore` — the first ``add``
   builds the engine and persists a ``graph.bccsnap`` snapshot;
2. simulates a restart: a *second* directory over the same store root
   attaches the snapshot (zero CSR freezes, zero core decompositions) and
   answers the same queries identically;
3. tampers with one byte of the snapshot and restarts again: the checksum
   rejects the file, the directory quietly rebuilds and re-persists;
4. hosts a four-region sharded network under a two-shard memory budget:
   cold shards are evicted LRU and paged back from their per-shard
   snapshots on the next routed query — every answer stays exact.

Run with:  python examples/persistent_store.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import GraphDirectory, Query
from repro.datasets import generate_baidu_network, load_dataset
from repro.graph.labeled_graph import LabeledGraph
from repro.store import SnapshotStore

REGIONS = ("berlin", "osaka", "toronto", "warsaw")


def build_regional_network() -> LabeledGraph:
    """Four disconnected regional networks in one labeled graph."""
    graph = LabeledGraph()
    for index, region in enumerate(REGIONS):
        regional = generate_baidu_network("tiny", seed=20 + index).graph
        for vertex in regional.vertices():
            graph.add_vertex(f"{region}/{vertex}", label=regional.label(vertex))
        for u, v in regional.edges():
            graph.add_edge(f"{region}/{u}", f"{region}/{v}")
    return graph


def regional_query(region: str) -> Query:
    bundle = generate_baidu_network("tiny", seed=20 + REGIONS.index(region))
    q_left, q_right = bundle.default_query()
    return Query("lp-bcc", (f"{region}/{q_left}", f"{region}/{q_right}"))


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="bcc-store-"))
    bundle = load_dataset("baidu-tiny", seed=7)
    query = Query("l2p-bcc", bundle.default_query())

    # --- 1. first boot: build and persist -----------------------------
    started = time.perf_counter()
    directory = GraphDirectory(store=root, sharded=False)
    engine = directory.add("baidu", bundle)
    first_answer = engine.search(query)
    build_ms = (time.perf_counter() - started) * 1000
    assert directory.store_summary()["modes"] == {"baidu": "built"}
    print(
        f"First boot: built + persisted in {build_ms:.1f}ms "
        f"({engine.counters_snapshot()['csr_freezes']} freeze, "
        f"{engine.counters_snapshot()['index_builds']} index build) -> {root}"
    )

    # --- 2. restart: attach, don't rebuild ----------------------------
    started = time.perf_counter()
    restarted = GraphDirectory(store=root, sharded=False)
    attached = restarted.add("baidu", load_dataset("baidu-tiny", seed=7))
    second_answer = attached.search(query)
    attach_ms = (time.perf_counter() - started) * 1000
    counters = attached.counters_snapshot()
    assert counters["csr_freezes"] == 0, "attach must not freeze"
    assert restarted.store_summary()["modes"] == {"baidu": "attached"}
    assert second_answer.status == first_answer.status
    assert sorted(map(str, second_answer.community or ())) == sorted(
        map(str, first_answer.community or ())
    )
    print(
        f"Restart: attached in {attach_ms:.1f}ms with zero CSR freezes; "
        "answers are identical."
    )

    # --- 3. corruption heals itself ------------------------------------
    store = SnapshotStore(root)
    snapshot_path = store.graph_path("baidu")
    blob = bytearray(snapshot_path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    snapshot_path.write_bytes(bytes(blob))
    healed = GraphDirectory(store=store, sharded=False)
    rebuilt = healed.add("baidu", load_dataset("baidu-tiny", seed=7))
    assert rebuilt.counters_snapshot()["csr_freezes"] == 1
    assert store.counters_snapshot()["invalid"] == 1
    print(
        "Corrupted snapshot: checksum rejected the file, the directory "
        "rebuilt and re-persisted it."
    )

    # --- 4. bounded memory: 4 shards, budget 2 --------------------------
    sharded_dir = GraphDirectory(store=root)
    regional = sharded_dir.add(
        "enterprise", build_regional_network(), max_resident_shards=2
    )
    queries = [regional_query(region) for region in REGIONS]
    for _ in range(2):  # second pass pages evicted shards back from disk
        for q in queries:
            response = regional.search(q)
            assert response.status == "ok", response
        assert len(regional.shards_built()) <= 2
    block = regional.stats(name="enterprise").store
    assert block["evictions"] >= 2 and block["attaches"] >= 2
    print(
        f"Sharded: {regional.shard_count()} regions served under a "
        f"2-shard budget — resident {block['resident_shards']}, "
        f"{block['evictions']} evictions, {block['attaches']} page-backs "
        "from disk, all answers exact."
    )

    print("\nStore state as the gateway reports it (/healthz -> store):")
    import json

    print(json.dumps(sharded_dir.store_summary(), indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
