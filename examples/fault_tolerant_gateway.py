#!/usr/bin/env python
"""Fault-tolerant serving: injection → ejection → degraded mode → recovery.

A guided tour of the resilience layer, all on one loopback gateway:

1. hosts a Baidu-like graph as a 3-engine :class:`repro.server.ReplicaSet`
   with a seeded :class:`repro.server.FaultPlan` that makes replica 0 fail
   its next dispatches — deterministic chaos, no monkeypatching;
2. drives queries through :class:`repro.server.GatewayClient` and watches
   **failover** hide every injected fault (answers keep parity with the
   fault-free ones), the failing replica **ejected** from routing by its
   circuit breaker, and ``/healthz`` flip to ``degraded``;
3. kills the remaining replicas too and shows **degraded mode**: a warm
   query replays its last good answer marked ``degraded: true``, a cold
   query answers ``503 Service Unavailable`` + ``Retry-After`` — never a
   hang;
4. shows a **deadline**: a query whose plan stalls 30 s comes back as a
   ``504``/``deadline-exceeded`` within its 300 ms budget;
5. reads per-replica health (state, failures, ejections, latency EWMA) off
   ``/stats``.

Run with:  python examples/fault_tolerant_gateway.py
"""

from __future__ import annotations

from repro import GraphDirectory, Query, SearchConfig
from repro.datasets import generate_baidu_network
from repro.exceptions import DeadlineExceededError
from repro.server import (
    FaultPlan,
    FaultRule,
    Gateway,
    GatewayClient,
    GatewayError,
    GatewayUnavailableError,
    HealthPolicy,
    RetryPolicy,
)

REPLICAS = 3


def main() -> None:
    bundle = generate_baidu_network("tiny", seed=7)
    query = Query("lp-bcc", bundle.default_query())
    config = SearchConfig(b=1, max_iterations=100)

    # ------------------------------------------------------------------
    # 1. One failing replica: failover absorbs it, the breaker ejects it.
    # ------------------------------------------------------------------
    plan = FaultPlan(
        [
            # Replica 0 fails its next 3 dispatches (exactly the breaker's
            # failure threshold), then would recover if probed.
            FaultRule("replica.search", where={"replica": 0}, count=3),
            # Stall rule for part 4: this one query hangs 30s wherever it
            # runs — only a deadline can bound it.
            FaultRule(
                "replica.search",
                kind="stall",
                where={"vertices": ("stall", "stall2")},
                delay_seconds=30.0,
            ),
        ]
    )
    directory = GraphDirectory(sharded=False)
    directory.add(
        "baidu",
        bundle,
        config=config,
        replicas=REPLICAS,
        health_policy=HealthPolicy(failure_threshold=3, ejection_seconds=3600.0),
        fault_plan=plan,
    )

    replica_set = directory.get("baidu")
    with Gateway(directory, port=0, retry_after_seconds=5) as gateway:
        client = GatewayClient(
            gateway.url,
            timeout_seconds=30.0,
            retry_policy=RetryPolicy(max_attempts=3),
        )
        print(f"gateway up at {gateway.url}, serving 'baidu' "
              f"with {REPLICAS} replicas; replica 0 scheduled to fail")

        reference = client.search("baidu", query)
        print(f"\n[1] first query: status={reference.status}, "
              f"|community|={len(reference.vertices)} — replica 0 faulted "
              f"once, failover already hid it")
        for round_ in range(1, 4):
            response = client.search("baidu", query, use_cache=False)
            assert response.vertices == reference.vertices
            print(f"    round {round_}: exact parity "
                  f"({plan.injected()} faults injected so far, "
                  f"replica 0 now '{replica_set.replica_health(0).state()}')")

        health = client.healthz()
        print(f"\n[2] /healthz after the failure storm: "
              f"status={health['status']}, "
              f"baidu={health['graphs']['baidu']['state']} "
              f"({health['graphs']['baidu']['available']}/{REPLICAS} available)")

        # ------------------------------------------------------------------
        # 3. Kill the rest: degraded replay for warm queries, 503 for cold.
        # ------------------------------------------------------------------
        for replica_id in range(1, REPLICAS):
            breaker = replica_set.replica_health(replica_id)
            for _ in range(3):
                breaker.record_failure()
        print(f"\n[3] all replicas now ejected "
              f"(set state: {replica_set.health_summary()['state']})")

        stale = client.search("baidu", query)
        print(f"    warm query: served from the last-good cache, "
              f"degraded={stale.degraded}, answer unchanged "
              f"({stale.vertices == reference.vertices})")

        cold = Query("lp-bcc", (query.vertices[1], query.vertices[0]))
        try:
            client_no_retry = GatewayClient(gateway.url, timeout_seconds=30.0)
            client_no_retry.search("baidu", cold, use_cache=False)
        except GatewayUnavailableError as refusal:
            print(f"    cold query: 503 unavailable, "
                  f"retry after {refusal.retry_after_seconds:g}s — no hang")

        # Re-admit everything for part 4 (operators would wait the window;
        # we close the breakers directly to keep the tour moving).
        for replica_id in range(REPLICAS):
            breaker = replica_set.replica_health(replica_id)
            breaker._ejected_until = 0.0  # demo shortcut: reopen instantly
            if breaker.try_admit():
                breaker.record_success(0.001)

        # ------------------------------------------------------------------
        # 4. Deadlines: a stalled query answers 504 inside its budget.
        # ------------------------------------------------------------------
        try:
            client_no_retry.search(
                "baidu",
                Query("lp-bcc", ("stall", "stall2")),
                config=SearchConfig(
                    b=1, max_iterations=100, deadline_ms=300.0
                ),
            )
        except DeadlineExceededError as exc:
            print(f"\n[4] stalled query (30s injected stall) gave up on time: "
                  f"504 deadline-exceeded ({exc})")
        except GatewayError as exc:  # pragma: no cover - vertex missing
            print(f"\n[4] stalled query refused: {exc}")

        # ------------------------------------------------------------------
        # 5. Per-replica health off /stats.
        # ------------------------------------------------------------------
        stats = client.stats()
        print("\n[5] per-replica health (GET /stats):")
        for block in stats["graphs"]["baidu"]["replicas"]:
            health_block = block["health"]
            ewma = health_block["latency_ewma_seconds"]
            print(f"    replica {block['replica']}: "
                  f"state={health_block['state']} "
                  f"failures={health_block['failures']} "
                  f"ejections={health_block['ejections']} "
                  f"readmissions={health_block['readmissions']} "
                  f"ewma={'%.1fms' % (ewma * 1000) if ewma else 'n/a'}")
        counters = stats["graphs"]["baidu"]["counters"]
        print(f"    set: searches={counters['searches']} "
              f"failovers={counters['failovers']} "
              f"ejections={counters['ejections']}")

    print("\ndone: faults injected, failover hid them, breakers ejected and "
          "re-admitted, degraded mode answered, deadlines held.")


if __name__ == "__main__":
    main()
