#!/usr/bin/env python
"""Sharded multi-graph serving: regions, routing, policies and a stats endpoint.

The ROADMAP's serving scenario, one level up from the enterprise demo: a
single process serves *several* graphs, and the big one is a multi-region
enterprise network whose regions are disconnected components.  The script

1. composes three Baidu-like regional networks into one labeled graph with
   three connected components and hosts it in a
   :class:`repro.serving.GraphDirectory` as a sharded engine
   (:class:`repro.serving.ShardedBCCEngine`) — plus a second, monolithic
   graph loaded straight from the dataset registry by name;
2. attaches cache admission policies (a TTL so answers go stale after a
   while, and a per-method budget so baseline traffic cannot evict the
   BCC answers);
3. serves a mixed batch: same-region team queries (answered by that
   region's shard only — the other shards are never even built), a
   cross-region pair (short-circuited to ``status="empty"`` with
   ``reason="cross-shard"`` — no shard is touched), and a query for a
   former employee (a position-aligned error row under
   ``on_error="return"``);
4. prints the JSON stats endpoint: per-shard counters proving laziness,
   cache hit rates, and the latency histogram.

Run with:  python examples/sharded_serving.py
"""

from __future__ import annotations

from repro import GraphDirectory, Query, SearchConfig
from repro.api import STATUS_EMPTY, STATUS_ERROR, STATUS_OK
from repro.datasets import generate_baidu_network
from repro.exceptions import REASON_CROSS_SHARD
from repro.graph.labeled_graph import LabeledGraph
from repro.serving import CompositePolicy, MethodBudgetPolicy, TTLPolicy

REGIONS = ("berlin", "osaka", "toronto")


def build_regional_network() -> LabeledGraph:
    """Three disconnected regional enterprise networks in one graph."""
    graph = LabeledGraph()
    for index, region in enumerate(REGIONS):
        regional = generate_baidu_network("tiny", seed=10 + index).graph
        for vertex in regional.vertices():
            graph.add_vertex(f"{region}/{vertex}", label=regional.label(vertex))
        for u, v in regional.edges():
            graph.add_edge(f"{region}/{u}", f"{region}/{v}")
    return graph


def regional_query(region: str) -> Query:
    """A representative cross-label pair inside ``region``'s component."""
    bundle = generate_baidu_network("tiny", seed=10 + REGIONS.index(region))
    q_left, q_right = bundle.default_query()
    return Query("lp-bcc", (f"{region}/{q_left}", f"{region}/{q_right}"))


def main() -> None:
    graph = build_regional_network()
    print(f"Multi-region enterprise network: {graph}")

    # One process, many graphs: the regional network (sharded) plus any
    # registered dataset by name.  Policies: answers expire after an hour,
    # and the label-agnostic baselines get a tiny cache budget so they can
    # never evict the BCC answers under skewed traffic.
    directory = GraphDirectory(
        config=SearchConfig(b=1),
        result_cache_policy=CompositePolicy(
            [TTLPolicy(3600.0), MethodBudgetPolicy({"ctc": 4, "psa": 4})]
        ),
    )
    enterprise = directory.add("enterprise", graph)  # sharded by default
    directory.load("baidu-tiny", name="hq-reference", seed=7, sharded=False)
    print(f"Serving {directory.names()} from one directory.\n")
    print(
        f"'enterprise' partitioned into {enterprise.shard_count()} "
        f"connected-component shards (one per region); none built yet: "
        f"{enterprise.shards_built()}"
    )

    # A mixed batch: two berlin queries (one repeat — a cache hit), one
    # osaka query, one cross-region pair, one former employee.
    berlin, osaka = regional_query("berlin"), regional_query("osaka")
    cross_region = Query(
        "lp-bcc", (berlin.vertices[0], osaka.vertices[1])
    )
    former_employee = Query("lp-bcc", (berlin.vertices[0], "berlin/ghost"))
    batch = [berlin, berlin, osaka, cross_region, former_employee]
    responses = directory.serve_many(
        "enterprise", batch, on_error="return", max_workers=4
    )

    ok = [r for r in responses if r.status == STATUS_OK]
    cross = [r for r in responses if r.reason == REASON_CROSS_SHARD]
    errors = [r for r in responses if r.status == STATUS_ERROR]
    assert len(cross) == 1 and cross[0].status == STATUS_EMPTY
    assert len(errors) == 1
    print(
        f"\nBatch of {len(batch)} served: {len(ok)} communities, "
        f"1 cross-region query answered empty (reason="
        f"{cross[0].reason!r}) without touching any shard, "
        f"1 error row ({errors[0].reason!r}) without aborting the batch."
    )
    assert responses[1].timings.get("cache_hit") == 1.0
    print("The repeated berlin query was a result-cache hit.")

    # Laziness, visible in the stats: only berlin's and osaka's shards were
    # ever built — toronto's component did zero work.
    built = enterprise.shards_built()
    toronto_vertex = next(
        v for v in graph.vertices() if str(v).startswith("toronto/")
    )
    toronto_shard = enterprise.shard_of(toronto_vertex)
    assert toronto_shard not in built
    print(
        f"Shards built by the batch: {built} of "
        f"{enterprise.shard_count()} (toronto's shard {toronto_shard} "
        "was never prepared)."
    )

    stats = directory.stats()["enterprise"]
    toronto_counters = stats.shard(toronto_shard)["counters"]
    assert toronto_counters["csr_freezes"] == 0
    assert toronto_counters["index_builds"] == 0

    print("\nStats endpoint payload (the laziness proof, in JSON):")
    print(stats.to_json(indent=2))


if __name__ == "__main__":
    main()
