#!/usr/bin/env python
"""Static analysis tour: a lock bug, the finding, noqa, and the ratchet.

The invariant linter (``python -m repro.analysis``) enforces statically
what the concurrency/chaos suites only catch probabilistically at
runtime.  This script walks the whole loop on a synthetic repo in a temp
directory:

1. writes an ``engine.py`` with the exact shape of the bug the linter
   was born to catch — ``BCCEngine.__repr__`` reading the lock-guarded
   ``_counters`` outside ``_counters_lock`` — and shows the BCC001
   finding;
2. silences that one line with ``# noqa: BCC001`` (the escape hatch for
   a deliberate, justified exception) and shows the run going clean;
3. grandfathers the *un*-silenced bug into a baseline file instead,
   shows the run passing with the finding reported as baselined — then
   adds a second violation and shows the ratchet failing the run again:
   the baseline protects the past, never the future.

Run with:  python examples/static_analysis.py
"""

from __future__ import annotations

import tempfile
import textwrap
from pathlib import Path

from repro.analysis import (
    discover_files,
    load_baseline,
    run_analysis,
    save_baseline,
)

BUGGY_ENGINE = textwrap.dedent(
    '''
    import threading

    class BCCEngine:
        def __init__(self):
            self._counters_lock = threading.Lock()
            self._counters = {"searches": 0}

        def bump(self):
            with self._counters_lock:
                self._counters["searches"] += 1

        def __repr__(self):
            return f"BCCEngine(searches={self._counters['searches']})"
    '''
)


def lint(root: Path):
    """Run the real pipeline over ``root``; return the report."""
    return run_analysis(discover_files([root]), root=root)


def lint_with_baseline(root: Path, baseline: Path):
    return run_analysis(
        discover_files([root]), root=root, baseline_path=baseline
    )


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="bcc-analysis-") as tmp:
        root = Path(tmp)
        engine = root / "engine.py"

        # ------------------------------------------------------------------
        banner("1. The violation: a guarded counter read outside its lock")
        engine.write_text(BUGGY_ENGINE, encoding="utf-8")
        report = lint(root)
        for finding in report.findings:
            print("  " + finding.render())
        assert [f.rule for f in report.findings] == ["BCC001"]
        assert report.failed
        print("  -> exit code 1: this is the bug the linter caught for real")
        print("     in src/repro/api/engine.py before PR 8 fixed it.")

        # ------------------------------------------------------------------
        banner("2. The escape hatch: one justified '# noqa: BCC001' line")
        silenced = BUGGY_ENGINE.replace(
            "self._counters['searches']})\"",
            "self._counters['searches']})\"  # noqa: BCC001",
        )
        assert "# noqa" in silenced
        engine.write_text(silenced, encoding="utf-8")
        report = lint(root)
        print(f"  findings after noqa: {len(report.findings)}")
        assert report.findings == []
        print("  -> exit code 0: suppression is per-line and per-rule, and")
        print("     the comment sits beside the code it excuses — greppable.")

        # ------------------------------------------------------------------
        banner("3. The ratchet: baseline the past, fail the future")
        engine.write_text(BUGGY_ENGINE, encoding="utf-8")  # bug is back
        baseline = root / "analysis-baseline.json"
        save_baseline(baseline, lint(root).findings)
        print(f"  baseline entries: {sum(load_baseline(baseline).values())}")

        report = lint_with_baseline(root, baseline)
        print(
            f"  with baseline: {len(report.findings)} active, "
            f"{len(report.baselined)} baselined -> run passes"
        )
        assert report.findings == [] and len(report.baselined) == 1

        # A *new* violation is not covered — the ratchet only tightens.
        replicas = root / "replicas.py"
        replicas.write_text(
            textwrap.dedent(
                '''
                class ReplicaSet:
                    def peek(self):
                        return self._searches
                '''
            ),
            encoding="utf-8",
        )
        report = lint_with_baseline(root, baseline)
        for finding in report.findings:
            print("  NEW " + finding.render())
        assert [f.rule for f in report.findings] == ["BCC001"]
        assert report.failed
        print("  -> exit code 1 again: the baseline grandfathers exactly the")
        print("     findings it lists (line-insensitive, multiset), nothing")
        print("     more.  Fix a baselined finding, regenerate with")
        print("     --write-baseline, and it can never come back.")

    print()
    print("Tour complete: violation caught, noqa honored, ratchet held.")


if __name__ == "__main__":
    main()
