#!/usr/bin/env python
"""Exp-11 case study: interdisciplinary research groups on DBLP (Figure 15).

Reproduces the academic collaboration case study on a synthetic stand-in for
the DBLP-Citation network: authors labeled by research field, edges are
co-authorships, cross-field edges are interdisciplinary collaborations.

1. A 2-labeled BCC query Q1 = {"Tim Kraska", "Michael I. Jordan"} discovers
   the ML4DB / DB4ML community bridging "Database" and "Machine Learning".
2. A 3-labeled mBCC query Q2 = {"Michael J. Franklin", "Michael I. Jordan",
   "Ion Stoica"} discovers the AMPLab-style community across "Database",
   "Machine Learning" and "Systems and Networking", including the
   cross-group connectivity path between the three fields.

Run with:  python examples/academic_multilabel_case_study.py
"""

from __future__ import annotations

from repro import BCCEngine, Query, SearchConfig
from repro.datasets import generate_academic_network
from repro.eval import describe_community


def show(title: str, graph, vertices) -> None:
    print(f"\n{title}")
    by_field = {}
    for author in sorted(vertices, key=str):
        by_field.setdefault(graph.label(author), []).append(author)
    for field, authors in sorted(by_field.items()):
        named = [a for a in authors if not str(a).split("-")[0].isupper() or " " in str(a)]
        print(f"  [{field}] ({len(authors)} authors)")
        stars = [a for a in authors if " " in str(a) and not str(a).endswith(tuple("0123456789"))]
        if stars:
            print(f"      notable: {', '.join(stars)}")


def main() -> None:
    bundle = generate_academic_network(seed=2021)
    graph = bundle.graph
    print(f"Academic collaboration network: {graph} with fields {sorted(graph.labels())}")

    # One engine serves both the 2-labeled BCC and the 3-labeled mBCC query.
    engine = BCCEngine(graph).prepare()

    # Part 1: two-labeled BCC query (Database x Machine Learning).
    q1 = bundle.metadata["default_query"]
    print(f"\n2-labeled query Q1 = {q1}, b = 3, k1 = k2 = 3")
    response = engine.search(
        Query("lp-bcc", tuple(q1), config=SearchConfig(k1=3, k2=3, b=3))
    ).raise_for_empty()
    bcc = response.result
    show("ML4DB / DB4ML community (Figure 15a):", graph, response.vertices)
    report = describe_community(response.community)
    print(
        f"  |V|={report.num_vertices}, interdisciplinary butterflies="
        f"{report.total_butterflies}, leader pair={bcc.leader_pair}"
    )

    # Part 2: three-labeled mBCC query, through the same front door.
    q2 = list(bundle.metadata["three_label_query"])
    print(f"\n3-labeled query Q2 = {q2}, b = 3, k_i = 3")
    mbcc = engine.search(
        Query("mbcc", tuple(q2), config=SearchConfig(core_parameters=(3, 3, 3), b=3))
    ).raise_for_empty().result
    show("Cross-discipline community (Figure 15b):", graph, mbcc.vertices)
    print(f"  groups: {{ {', '.join(f'{k}: {len(v)}' for k, v in sorted(mbcc.groups.items()))} }}")
    print(f"  cross-group interaction edges: {mbcc.interaction_edges}")
    print(
        "  cross-group connectivity holds via the label interaction path, "
        "as required by Def. 7/8."
    )


if __name__ == "__main__":
    main()
