#!/usr/bin/env python
"""Exp-7 and Exp-8 case studies: trade network (Figure 12) and fiction network (Figure 13).

Part 1 — international trade: countries labeled by continent; query
Q = {"United States", "China"} with b = 3.  The BCC couples the dense Asian
and North American trade blocks through the two leading economies, while CTC
misses the other major Asian partners.

Part 2 — Harry Potter fiction network: characters labeled by camp (justice /
evil); query Q = {"Ron Weasley", "Draco Malfoy"}.  The BCC includes Ron's
family and the evil camp's leader (Lord Voldemort), both of which CTC misses.

Run with:  python examples/trade_and_fiction_case_studies.py
"""

from __future__ import annotations

from repro import BCCEngine, Query, SearchConfig
from repro.datasets import generate_fiction_network, generate_trade_network
from repro.eval import describe_community


def show(title: str, graph, vertices) -> None:
    print(f"\n{title}")
    by_label = {}
    for vertex in sorted(vertices, key=str):
        by_label.setdefault(graph.label(vertex), []).append(vertex)
    for label, members in sorted(by_label.items()):
        print(f"  [{label}] ({len(members)}): {', '.join(members)}")


def trade_case_study() -> None:
    print("=" * 72)
    print("Exp-7: international trade network (Figure 12)")
    bundle = generate_trade_network(seed=2021)
    graph = bundle.graph
    q_left, q_right = bundle.default_query()
    print(f"Query Q = {{{q_left}, {q_right}}}, b = 3")

    engine = BCCEngine(graph).prepare()
    bcc = engine.search(
        Query("lp-bcc", (q_left, q_right), config=SearchConfig(b=3))
    ).raise_for_empty()
    show("Butterfly-Core Community (ours):", graph, bcc.vertices)
    report = describe_community(bcc.community)
    print(f"  transcontinental butterflies: {report.total_butterflies}, diameter: {report.diameter}")

    ctc = engine.search(Query("ctc", (q_left, q_right))).raise_for_empty()
    show("CTC baseline:", graph, ctc.vertices)
    asian_partners = [v for v in ctc.vertices if graph.label(v) == "Asia"]
    print(f"  Asian partners found by CTC: {asian_partners or 'only China'} "
          "(the other major Asian trade partners are missed)")


def fiction_case_study() -> None:
    print("\n" + "=" * 72)
    print("Exp-8: Harry Potter fiction network (Figure 13)")
    bundle = generate_fiction_network(seed=2021)
    graph = bundle.graph
    q_left, q_right = bundle.default_query()
    print(f"Query Q = {{{q_left}, {q_right}}}, b = 1")

    engine = BCCEngine(graph).prepare()
    bcc = engine.search(
        Query("lp-bcc", (q_left, q_right), config=SearchConfig(b=1))
    ).raise_for_empty()
    show("Butterfly-Core Community (ours):", graph, bcc.vertices)
    weasleys = [v for v in bcc.vertices if "Weasley" in str(v)]
    print(f"  Ron's family members recovered: {', '.join(sorted(weasleys))}")
    print(f"  evil-camp leader present: {'Lord Voldemort' in bcc.vertices}")

    ctc = engine.search(Query("ctc", (q_left, q_right))).raise_for_empty()
    show("CTC baseline:", graph, ctc.vertices)
    print(
        f"  CTC finds {sum(1 for v in ctc.vertices if 'Weasley' in str(v))} Weasleys "
        f"and misses Lord Voldemort: {'Lord Voldemort' not in ctc.vertices}"
    )


def main() -> None:
    trade_case_study()
    fiction_case_study()


if __name__ == "__main__":
    main()
