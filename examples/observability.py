#!/usr/bin/env python
"""The observability layer: request tracing, /metrics, slow-query capture.

A guided tour of what an operator sees when the serving stack runs with
its lights on.  The script

1. hosts the paper's running-example graph behind a
   :class:`repro.server.Gateway` and turns tracing **on** with a 0ms
   slow-query threshold, so every request's span tree is retained;
2. serves a few queries through the :class:`repro.server.GatewayClient`
   (one of them twice, so the result cache shows up in the metrics);
3. scrapes ``GET /metrics`` — the Prometheus text exposition every
   counter, gauge and latency histogram in the process feeds — and prints
   the engine/gateway samples a dashboard would graph;
4. reads the ``/stats`` schema-v2 ``trace`` and ``metrics`` blocks, the
   JSON view of the same registry;
5. pulls ``GET /debug/slow`` and renders the retained span trees with
   :func:`repro.obs.tracing.format_trace` — the same view
   ``python -m repro.obs slow.json`` gives from a saved document.

Tracing is off by default and costs one ``ContextVar.get`` per span site
when off (``benchmarks/bench_obs_overhead.py`` measures it); this script
opts in explicitly, which is the intended production posture: flip it on
when investigating, read ``/debug/slow``, flip it off.

Run with:  python examples/observability.py
"""

from __future__ import annotations

import json

from repro import GraphDirectory, Query
from repro.graph.generators import paper_example_graph
from repro.obs.tracing import format_trace
from repro.server import Gateway, GatewayClient


def show_samples(text: str, prefixes: tuple) -> None:
    """Print the exposition rows whose metric name starts with a prefix."""
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        if line.startswith(prefixes):
            print(f"    {line}")


def main() -> None:
    directory = GraphDirectory(sharded=False)
    directory.add("paper", paper_example_graph())

    with Gateway(directory, port=0, max_in_flight=8) as gateway:
        # ------------------------------------------------------------------
        # 1. Lights on: tracing enabled, every request is a "slow" query.
        # ------------------------------------------------------------------
        obs = gateway.observability
        obs.tracer.enable()
        obs.slow_log.set_threshold_ms(0.0)
        print(f"gateway up at {gateway.url} (tracing on, threshold 0ms)")

        # ------------------------------------------------------------------
        # 2. Serve a little traffic, including one repeated (cached) query.
        # ------------------------------------------------------------------
        client = GatewayClient(gateway.url)
        queries = [
            Query("online-bcc", ("ql", "qr")),
            Query("lp-bcc", ("ql", "qr")),
            Query("online-bcc", ("ql", "qr")),  # result-cache hit
        ]
        for query in queries:
            response = client.search("paper", query)
            print(f"  {query.method:<12} -> {response.status}")

        # ------------------------------------------------------------------
        # 3. The Prometheus scrape: what a dashboard would graph.
        # ------------------------------------------------------------------
        text = client.metrics_text()
        total_rows = sum(
            1 for line in text.splitlines() if not line.startswith("#")
        )
        print(f"\nGET /metrics -> {total_rows} samples; a few of them:")
        show_samples(
            text,
            (
                "bcc_engine_searches_total",
                "bcc_engine_result_cache",
                "bcc_gateway_requests_total",
                "bcc_gateway_in_flight",
                "bcc_graph_latency_seconds_count",
                "bcc_obs_tracer_",
                "bcc_obs_slowlog_retained",
            ),
        )

        # ------------------------------------------------------------------
        # 4. The same registry as JSON: /stats schema v2.
        # ------------------------------------------------------------------
        stats = client.stats()
        print(f"\n/stats schema v{stats['schema_version']}:")
        print(f"  trace block:   {json.dumps(stats['trace'], sort_keys=True)}")
        metrics_block = stats["metrics"]
        print(
            f"  metrics block: {metrics_block['series']} series from "
            f"sources {sorted(metrics_block['sources'])}"
        )

        # ------------------------------------------------------------------
        # 5. The slow-query log: retained span trees, operator-readable.
        # ------------------------------------------------------------------
        payload = client.debug_slow()
        print(
            f"\nGET /debug/slow -> {payload['retained']} retained "
            f"(threshold {payload['threshold_ms']}ms); newest first:"
        )
        for entry in payload["traces"][:2]:
            print()
            print(format_trace(entry))

    print("\ngateway closed; goodbye")


if __name__ == "__main__":
    main()
