#!/usr/bin/env python
"""Exp-6 case study: cross-country flight communities (Figure 11).

Reproduces the flight-network case study: on a labeled graph where vertices
are cities (labeled by country) and edges are airline routes, search for the
butterfly-core community of Q = {"Toronto", "Frankfurt"} with b = 3.  The BCC
answer couples the dense Canadian domestic core with the dense German
domestic core through the transatlantic hub butterfly
{Toronto, Vancouver, Frankfurt, Munich}; the CTC baseline, which ignores
country labels, returns mostly Canadian cities.

Run with:  python examples/flight_case_study.py
"""

from __future__ import annotations

from repro import BCCEngine, Query, SearchConfig
from repro.datasets import generate_flight_network
from repro.eval import community_core_levels, describe_community


def show(title: str, graph, vertices) -> None:
    print(f"\n{title}")
    by_country = {}
    for city in sorted(vertices, key=str):
        by_country.setdefault(graph.label(city), []).append(city)
    for country, cities in sorted(by_country.items()):
        print(f"  {country} ({len(cities)}): {', '.join(cities)}")


def main() -> None:
    bundle = generate_flight_network(seed=2021)
    graph = bundle.graph
    print(f"Flight network: {graph}")
    q_left, q_right = bundle.default_query()
    print(f"Query Q = {{{q_left}, {q_right}}}, b = 3, k1/k2 = coreness of the queries")

    engine = BCCEngine(graph, SearchConfig(b=3)).prepare()
    bcc = engine.search(Query("lp-bcc", (q_left, q_right))).raise_for_empty()
    show("Butterfly-Core Community (ours):", graph, bcc.vertices)
    report = describe_community(bcc.community)
    levels = community_core_levels(bcc.community)
    print(
        f"  domestic cores: {levels}; cross-country butterflies: "
        f"{report.total_butterflies}; diameter: {report.diameter}"
    )
    hubs = [v for v in ("Toronto", "Vancouver", "Frankfurt", "Munich") if v in bcc.vertices]
    print(f"  transatlantic hub butterfly members found: {', '.join(hubs)}")

    ctc = engine.search(Query("ctc", (q_left, q_right))).raise_for_empty()
    show("CTC baseline (label-agnostic closest truss):", graph, ctc.vertices)
    german = [v for v in ctc.vertices if graph.label(v) == "Germany"]
    print(
        f"  only {len(german)} German cities found — the international airline "
        "community is missed, as reported in the paper's Figure 11(b)."
    )


if __name__ == "__main__":
    main()
