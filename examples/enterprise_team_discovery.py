#!/usr/bin/env python
"""Professional team discovery on an IT enterprise network (Baidu-style workload).

This example mirrors the paper's motivating application (Section 3.6,
"Professional team discovery"): on an enterprise communication network whose
vertices are employees labeled by department, find the cross-department
project team behind a pair of employees.

The script

1. generates a Baidu-1-like network with planted cross-team ground-truth
   projects,
2. builds the offline BCindex once,
3. answers a batch of queries with the fast local L2P-BCC method, and
4. evaluates the answers against the planted ground truth with the F1-score,
   comparing against the CTC and PSA baselines (a miniature Figure 4).

Run with:  python examples/enterprise_team_discovery.py
"""

from __future__ import annotations

from repro import BCIndex, l2p_bcc_search
from repro.baselines import ctc_search, psa_search
from repro.datasets import generate_baidu_network
from repro.eval import QuerySpec, f1_score, generate_query_pairs


def main() -> None:
    bundle = generate_baidu_network("baidu-1", seed=7)
    graph = bundle.graph
    print(f"Enterprise network: {graph}")
    print(f"Planted cross-team projects: {len(bundle.communities)}")

    index = BCIndex(graph)
    print("BCindex built (label-group coreness + lazily cached butterfly degrees).")

    queries = generate_query_pairs(bundle, QuerySpec(count=6, degree_rank=0.8), seed=1)
    print(f"Generated {len(queries)} ground-truth query pairs (degree rank 80%, l = 1).\n")

    totals = {"L2P-BCC": [], "CTC": [], "PSA": []}
    for q_left, q_right in queries:
        truth = bundle.community_for_query(q_left, q_right)
        bcc = l2p_bcc_search(graph, q_left, q_right, b=1, index=index)
        ctc = ctc_search(graph, [q_left, q_right])
        psa = psa_search(graph, [q_left, q_right])
        scores = {
            "L2P-BCC": f1_score(bcc.vertices if bcc else set(), truth.members),
            "CTC": f1_score(ctc.vertices if ctc else set(), truth.members),
            "PSA": f1_score(psa.vertices if psa else set(), truth.members),
        }
        for method, score in scores.items():
            totals[method].append(score)
        print(
            f"query ({q_left} [{graph.label(q_left)}], {q_right} [{graph.label(q_right)}])  "
            + "  ".join(f"{m}: F1={s:.2f}" for m, s in scores.items())
        )

    print("\nAverage F1 over the workload (miniature Figure 4):")
    for method, scores in totals.items():
        print(f"  {method:>8}: {sum(scores) / len(scores):.3f}")
    print(
        "\nThe labeled butterfly-core model recovers the planted cross-team "
        "projects better than the label-agnostic baselines."
    )


if __name__ == "__main__":
    main()
