#!/usr/bin/env python
"""Professional team discovery on an IT enterprise network (Baidu-style workload).

This example mirrors the paper's motivating application (Section 3.6,
"Professional team discovery") *and* the ROADMAP's serving scenario: a
long-lived :class:`repro.BCCEngine` answers a batch of team-discovery
queries over one enterprise communication network.

The script

1. generates a Baidu-1-like network with planted cross-team ground-truth
   projects,
2. prepares the engine once (CSR freeze; the BCindex and label groups fill
   lazily and are reused by every query),
3. answers the whole workload with one concurrent ``search_many`` batch —
   the fast local L2P-BCC method plus the CTC and PSA baselines per query
   pair, served by a thread pool with ``on_error="return"``: the deliberately
   malformed query slipped into the batch (an employee who left the company)
   comes back as a position-aligned ``status="error"`` response instead of
   aborting everyone else's answers, and
4. evaluates the answers against the planted ground truth with the F1-score
   (a miniature Figure 4), showing the engine counters that prove the
   preparation was paid once — not per query, not per thread.

Run with:  python examples/enterprise_team_discovery.py
"""

from __future__ import annotations

from repro import BCCEngine, Query, get_method
from repro.api import STATUS_ERROR
from repro.datasets import generate_baidu_network
from repro.eval import QuerySpec, f1_score, generate_query_pairs

METHODS = ("l2p-bcc", "ctc", "psa")
DISPLAY = {method: get_method(method).display for method in METHODS}


def main() -> None:
    bundle = generate_baidu_network("baidu-1", seed=7)
    graph = bundle.graph
    print(f"Enterprise network: {graph}")
    print(f"Planted cross-team projects: {len(bundle.communities)}")

    engine = BCCEngine(graph).prepare()
    print("Engine prepared (CSR snapshot frozen; BCindex builds lazily, once).")

    pairs = generate_query_pairs(bundle, QuerySpec(count=6, degree_rank=0.8), seed=1)
    print(f"Generated {len(pairs)} ground-truth query pairs (degree rank 80%, l = 1).\n")

    # One batch: every method on every pair, served concurrently over the
    # warm snapshot.  A query for an employee who no longer exists rides
    # along — under on_error="return" it yields one status="error" response
    # at its position instead of aborting the whole batch.
    queries = [Query(method, pair) for pair in pairs for method in METHODS]
    bad_query = Query("l2p-bcc", (pairs[0][0], "former-employee"))
    responses = engine.search_many(
        queries + [bad_query], on_error="return", max_workers=4
    )
    failed = [r for r in responses if r.status == STATUS_ERROR]
    assert len(failed) == 1 and len(responses) == len(queries) + 1
    print(
        f"Batch of {len(responses)} served; 1 malformed query answered with "
        f"status={failed[0].status!r} (reason={failed[0].reason!r}) instead "
        "of aborting the other "
        f"{len(queries)} answers.\n"
    )

    totals = {DISPLAY[m]: [] for m in METHODS}
    for index, (q_left, q_right) in enumerate(pairs):
        truth = bundle.community_for_query(q_left, q_right)
        scores = {}
        for offset, method in enumerate(METHODS):
            response = responses[index * len(METHODS) + offset]
            scores[DISPLAY[method]] = f1_score(response.vertices, truth.members)
        for name, score in scores.items():
            totals[name].append(score)
        print(
            f"query ({q_left} [{graph.label(q_left)}], {q_right} [{graph.label(q_right)}])  "
            + "  ".join(f"{m}: F1={s:.2f}" for m, s in scores.items())
        )

    print("\nAverage F1 over the workload (miniature Figure 4):")
    for name, scores in totals.items():
        print(f"  {name:>8}: {sum(scores) / len(scores):.3f}")

    counters = engine.counters_snapshot()
    print(
        f"\nServed {counters['searches']} searches from 4 threads with "
        f"{counters['csr_freezes']} CSR freeze and "
        f"{counters['index_builds']} BCindex build — preparation amortized "
        "across the whole workload, filled exactly once under contention."
    )
    print(
        "The labeled butterfly-core model recovers the planted cross-team "
        "projects better than the label-agnostic baselines."
    )


if __name__ == "__main__":
    main()
