#!/usr/bin/env python
"""The HTTP gateway: remote clients, replicas, backpressure, a live /stats.

Everything the serving tier can do becomes network-reachable here.  The
script

1. hosts two graphs in a :class:`repro.serving.GraphDirectory` — a
   multi-region enterprise network served *sharded*, and a hot Baidu-like
   graph served by a 3-engine :class:`repro.server.ReplicaSet` behind
   least-loaded routing;
2. starts a :class:`repro.server.Gateway` on an ephemeral loopback port
   (a real ``ThreadingHTTPServer`` — stdlib only) and drives it with the
   :class:`repro.server.GatewayClient`, whose surface mirrors the engine:
   ``search`` / ``search_many`` / ``explain`` / ``stats``;
3. serves a mixed batch over the wire — ok rows, a cross-region pair
   (``status="empty"``, ``reason="cross-shard"``), and a query for a
   former employee that becomes a position-aligned *error row* instead of
   aborting the batch — then proves the decoded responses carry exact
   ``math.inf`` query distances for the non-ok rows;
4. demonstrates bounded admission: with the gateway capped at one
   in-flight request, a deliberately occupied slot turns the next call
   into ``429 Too Many Requests`` with a ``Retry-After`` hint;
5. fetches ``/stats`` and reads off the replica routing balance and the
   per-graph latency histograms.

Run with:  python examples/http_gateway.py
"""

from __future__ import annotations

import math

from repro import GraphDirectory, Query, SearchConfig
from repro.api import STATUS_EMPTY, STATUS_ERROR, STATUS_OK
from repro.datasets import generate_baidu_network
from repro.exceptions import REASON_CROSS_SHARD
from repro.graph.labeled_graph import LabeledGraph
from repro.server import Gateway, GatewayClient, GatewayOverloadedError

REGIONS = ("berlin", "osaka", "toronto")


def build_regional_network() -> LabeledGraph:
    """Three disconnected regional enterprise networks in one graph."""
    graph = LabeledGraph()
    for index, region in enumerate(REGIONS):
        regional = generate_baidu_network("tiny", seed=10 + index).graph
        for vertex in regional.vertices():
            graph.add_vertex(f"{region}/{vertex}", label=regional.label(vertex))
        for u, v in regional.edges():
            graph.add_edge(f"{region}/{u}", f"{region}/{v}")
    return graph


def regional_query(region: str) -> Query:
    """A representative cross-label pair inside ``region``'s component."""
    bundle = generate_baidu_network("tiny", seed=10 + REGIONS.index(region))
    q_left, q_right = bundle.default_query()
    return Query("lp-bcc", (f"{region}/{q_left}", f"{region}/{q_right}"))


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A directory: one sharded multi-region graph, one replicated graph.
    # ------------------------------------------------------------------
    directory = GraphDirectory(config=SearchConfig(b=1))
    directory.add("enterprise", build_regional_network())  # sharded
    hot_bundle = generate_baidu_network("tiny", seed=42)
    directory.add("hot", hot_bundle, sharded=False, replicas=3)
    print(f"directory: {directory!r}")

    # ------------------------------------------------------------------
    # 2. Serve it over HTTP and talk to it like a remote caller would.
    # ------------------------------------------------------------------
    with Gateway(directory, port=0, max_in_flight=8) as gateway:
        client = GatewayClient(gateway.url)
        health = client.healthz()
        print(
            f"gateway up at {gateway.url} "
            f"(protocol v{health['protocol_version']}, "
            f"serving {health['served_graphs']} graphs: {client.graphs()})"
        )

        # --------------------------------------------------------------
        # 3. A mixed batch over the wire: ok + cross-region + error row.
        # --------------------------------------------------------------
        berlin = regional_query("berlin")
        osaka = regional_query("osaka")
        batch = [
            berlin,
            osaka,
            # Cross-region pair (distinct labels, different components).
            Query("lp-bcc", (berlin.vertices[0], osaka.vertices[1])),
            # Former employee: an error row, not an aborted batch.
            Query("lp-bcc", (berlin.vertices[0], "berlin/GHOST")),
        ]
        rows = client.search_many("enterprise", batch, on_error="return")
        for query, row in zip(batch, rows):
            print(f"  {query.vertices} -> {row.status:5s} "
                  f"(reason={row.reason}, |community|={len(row.vertices)})")
        assert rows[0].status == STATUS_OK
        assert rows[2].status == STATUS_EMPTY
        assert rows[2].reason == REASON_CROSS_SHARD
        assert rows[3].status == STATUS_ERROR
        # The wire carried "inf" (standard JSON), decoded back to math.inf.
        assert rows[2].query_distance == math.inf
        assert rows[3].query_distance == math.inf

        # The hot graph answers through whichever replica is least loaded.
        hot_query = Query("lp-bcc", hot_bundle.default_query())
        for _ in range(6):
            assert client.search("hot", hot_query).status == STATUS_OK
        report = client.explain("hot", hot_query)
        print(f"  hot graph served by replica {report['replica']} "
              f"of {report['replicas']}")

        # --------------------------------------------------------------
        # 4. Backpressure: a saturated gateway answers 429 + Retry-After.
        # --------------------------------------------------------------
        with Gateway(directory, port=0, max_in_flight=1) as tiny_gateway:
            tiny_client = GatewayClient(tiny_gateway.url)
            tiny_gateway.try_acquire()  # occupy the only slot
            try:
                tiny_client.search("hot", hot_query)
            except GatewayOverloadedError as refused:
                print(f"  saturated gateway said: {refused} "
                      f"(retry in {refused.retry_after_seconds:g}s)")
            finally:
                tiny_gateway.release()
            assert tiny_client.search("hot", hot_query).status == STATUS_OK
            assert tiny_gateway.counters_snapshot()["rejections"] == 1

        # --------------------------------------------------------------
        # 5. The stats endpoint: replicas, shards, latency — one document.
        # --------------------------------------------------------------
        stats = client.stats()
        print(f"stats schema v{stats['schema_version']}, "
              f"uptime {stats['uptime_seconds']:.2f}s")
        enterprise = stats["graphs"]["enterprise"]
        built = sum(1 for shard in enterprise["shards"] if shard["built"])
        print(f"  enterprise: {built}/{len(enterprise['shards'])} shards "
              f"built (laziness held), "
              f"p95={enterprise['latency']['p95_seconds']}s")
        hot = stats["graphs"]["hot"]
        routed = [block["routed"] for block in hot["replicas"]]
        print(f"  hot: kind={hot['kind']}, routed per replica={routed}, "
              f"cache hit rate={hot['cache']['hit_rate']:.2f}")
        assert hot["kind"] == "replicated"
        assert sum(routed) >= 6

    print("gateway stopped; all assertions held")


if __name__ == "__main__":
    main()
