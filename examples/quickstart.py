#!/usr/bin/env python
"""Quickstart: butterfly-core community search on the paper's running example.

This script rebuilds the IT-professional network of Figure 1 (three roles:
SE, UI, PM), runs the three BCC search algorithms for the query pair
(q_l, q_r) with the parameters of Example 3 — (k1, k2, b) = (4, 3, 1) — and
prints the discovered community, which matches Figure 2 of the paper.  It
also runs the CTC and PSA baselines to show why label-agnostic models miss
the cross-group team.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ctc_search, l2p_bcc_search, lp_bcc_search, online_bcc_search, psa_search
from repro.eval import describe_community, f1_score
from repro.graph.generators import paper_example_graph


def show_community(title: str, graph, vertices) -> None:
    """Print a community grouped by label."""
    print(f"\n{title}")
    by_label = {}
    for vertex in sorted(vertices, key=str):
        by_label.setdefault(graph.label(vertex), []).append(vertex)
    for label, members in sorted(by_label.items()):
        print(f"  [{label}] {', '.join(members)}")


def main() -> None:
    graph = paper_example_graph()
    print(f"Input graph (Figure 1): {graph}")
    q_left, q_right = "ql", "qr"
    print(f"Query Q = {{{q_left} (SE), {q_right} (UI)}}, parameters k1=4, k2=3, b=1")

    expected = {"ql", "v1", "v2", "v3", "v4", "v5", "qr", "u1", "u2", "u3"}

    for name, search in (
        ("Online-BCC (Algorithm 1)", online_bcc_search),
        ("LP-BCC (Algorithm 1 + Algorithms 5-7)", lp_bcc_search),
        ("L2P-BCC (Algorithm 8)", l2p_bcc_search),
    ):
        result = search(graph, q_left, q_right, k1=4, k2=3, b=1)
        show_community(f"{name}:", graph, result.vertices)
        report = describe_community(result.community)
        print(
            f"  structure: |V|={report.num_vertices}, diameter={report.diameter}, "
            f"butterflies={report.total_butterflies}, "
            f"F1 vs Figure 2 = {f1_score(result.vertices, expected):.2f}"
        )

    ctc = ctc_search(graph, [q_left, q_right])
    show_community("CTC baseline (closest truss community):", graph, ctc.vertices)
    print(f"  F1 vs Figure 2 = {f1_score(ctc.vertices, expected):.2f}  "
          "(misses most members of both teams)")

    psa = psa_search(graph, [q_left, q_right])
    show_community("PSA baseline (progressive minimum k-core):", graph, psa.vertices)
    print(f"  F1 vs Figure 2 = {f1_score(psa.vertices, expected):.2f}")


if __name__ == "__main__":
    main()
