#!/usr/bin/env python
"""Quickstart: butterfly-core community search on the paper's running example.

This script rebuilds the IT-professional network of Figure 1 (three roles:
SE, UI, PM) and serves it through the :class:`repro.BCCEngine` — the
library's prepared, query-serving front door.  The engine freezes the graph
once, runs the three BCC search methods for the query pair (q_l, q_r) with
the parameters of Example 3 — (k1, k2, b) = (4, 3, 1) — and prints the
discovered community, which matches Figure 2 of the paper.  It then batches
the CTC and PSA baselines through ``search_many`` to show why label-agnostic
models miss the cross-group team.

The legacy one-shot functions (``online_bcc_search`` & co.) remain available
and delegate to the same engine path; hold an engine when you have more than
one query, so preparation (CSR freeze, label groups, BCindex) amortizes.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BCCEngine, Query, SearchConfig
from repro.eval import describe_community, f1_score
from repro.graph.generators import paper_example_graph


def show_community(title: str, graph, vertices) -> None:
    """Print a community grouped by label."""
    print(f"\n{title}")
    by_label = {}
    for vertex in sorted(vertices, key=str):
        by_label.setdefault(graph.label(vertex), []).append(vertex)
    for label, members in sorted(by_label.items()):
        print(f"  [{label}] {', '.join(members)}")


def main() -> None:
    graph = paper_example_graph()
    print(f"Input graph (Figure 1): {graph}")
    q_left, q_right = "ql", "qr"
    print(f"Query Q = {{{q_left} (SE), {q_right} (UI)}}, parameters k1=4, k2=3, b=1")

    # One engine, prepared once, serves every query below.
    engine = BCCEngine(graph, SearchConfig(k1=4, k2=3, b=1)).prepare()

    # `explain` describes dispatch and resolved parameters without searching.
    info = engine.explain(Query("lp-bcc", (q_left, q_right)))
    print(
        f"explain(lp-bcc): kind={info['method']['kind']}, "
        f"resolved k1={info['resolved']['k1']}, k2={info['resolved']['k2']}, "
        f"prepared={info['engine']['prepared']}"
    )

    expected = {"ql", "v1", "v2", "v3", "v4", "v5", "qr", "u1", "u2", "u3"}

    for title, method in (
        ("Online-BCC (Algorithm 1)", "online-bcc"),
        ("LP-BCC (Algorithm 1 + Algorithms 5-7)", "lp-bcc"),
        ("L2P-BCC (Algorithm 8)", "l2p-bcc"),
    ):
        response = engine.search(Query(method, (q_left, q_right)))
        show_community(f"{title}:", graph, response.vertices)
        report = describe_community(response.community)
        print(
            f"  structure: |V|={report.num_vertices}, diameter={report.diameter}, "
            f"butterflies={report.total_butterflies}, "
            f"F1 vs Figure 2 = {f1_score(response.vertices, expected):.2f}"
        )

    # Baselines ride the same front door — batched over the warm snapshot.
    # (They read only the config fields their algorithms define, so the
    # engine's k1/k2 don't leak into them.)
    ctc_response, psa_response = engine.search_many(
        [
            Query("ctc", (q_left, q_right)),
            Query("psa", (q_left, q_right)),
        ]
    )
    show_community(
        "CTC baseline (closest truss community):", graph, ctc_response.vertices
    )
    print(f"  F1 vs Figure 2 = {f1_score(ctc_response.vertices, expected):.2f}  "
          "(misses most members of both teams)")
    show_community(
        "PSA baseline (progressive minimum k-core):", graph, psa_response.vertices
    )
    print(f"  F1 vs Figure 2 = {f1_score(psa_response.vertices, expected):.2f}")

    counters = engine.counters_snapshot()
    print(
        f"\nEngine counters (prepared once, served "
        f"{counters['searches']} queries): {counters}"
    )


if __name__ == "__main__":
    main()
